/**
 * @file
 * Integration tests for the CMP system model: configuration plumbing,
 * coherence semantics end-to-end (write invalidation, eviction
 * retirement, forced invalidations), the directory-covers-caches
 * inclusion invariant under random load for every organization, and the
 * experiment driver.
 */

#include <gtest/gtest.h>

#include "sim/cmp_system.hh"
#include "sim/experiment.hh"

namespace cdir {
namespace {

/** Small but structurally faithful config for fast tests. */
CmpConfig
tinyConfig(CmpConfigKind kind, DirectoryKind dir_kind)
{
    CmpConfig cfg;
    cfg.kind = kind;
    cfg.numCores = 4;
    cfg.numSlices = 4;
    cfg.privateCache = CacheConfig{32, 2};
    cfg.directory.kind = dir_kind;
    switch (dir_kind) {
      case DirectoryKind::Cuckoo:
        cfg.directory.ways = 4;
        cfg.directory.sets = 32; // 2x provisioning at 4 cores SharedL2
        break;
      case DirectoryKind::Sparse:
      case DirectoryKind::InCache:
        cfg.directory.ways = 8;
        cfg.directory.sets = 16;
        break;
      case DirectoryKind::Skewed:
      case DirectoryKind::Elbow:
        cfg.directory.ways = 4;
        cfg.directory.sets = 32;
        break;
      case DirectoryKind::DuplicateTag:
      case DirectoryKind::Tagless:
        break; // geometry derived from the tracked caches
    }
    return cfg;
}

WorkloadParams
tinyWorkload(std::size_t cores = 4)
{
    WorkloadParams p;
    p.numCores = cores;
    p.codeBlocks = 64;
    p.sharedBlocks = 128;
    p.privateBlocksPerCore = 64;
    p.instructionFraction = 0.2;
    p.sharedDataFraction = 0.4;
    p.writeFraction = 0.25;
    p.seed = 3;
    return p;
}

TEST(CmpConfig, PaperConfigsMatchTable1)
{
    const auto shared = CmpConfig::paperConfig(CmpConfigKind::SharedL2);
    EXPECT_EQ(shared.numCores, 16u);
    EXPECT_EQ(shared.cachesPerCore(), 2u);
    EXPECT_EQ(shared.numCaches(), 32u);
    EXPECT_EQ(shared.privateCache.capacityBlocks(), 1024u); // 64KB
    EXPECT_EQ(shared.aggregateFrames(), 32768u);

    const auto priv = CmpConfig::paperConfig(CmpConfigKind::PrivateL2);
    EXPECT_EQ(priv.cachesPerCore(), 1u);
    EXPECT_EQ(priv.numCaches(), 16u);
    EXPECT_EQ(priv.privateCache.capacityBlocks(), 16384u); // 1MB
    EXPECT_EQ(priv.aggregateFrames(), 262144u);
}

TEST(CmpConfig, PaperDirectorySizesGiveExpectedProvisioning)
{
    // §5.2 selections: 4x512 is 1x for Shared-L2; 3x8192 is 1.5x for
    // Private-L2 (per slice).
    const auto shared = CmpConfig::paperConfig(CmpConfigKind::SharedL2);
    EXPECT_DOUBLE_EQ(
        provisioningFactor(shared, cuckooSliceParams(4, 512)), 1.0);
    EXPECT_DOUBLE_EQ(
        provisioningFactor(shared, cuckooSliceParams(4, 1024)), 2.0);

    const auto priv = CmpConfig::paperConfig(CmpConfigKind::PrivateL2);
    EXPECT_DOUBLE_EQ(
        provisioningFactor(priv, cuckooSliceParams(3, 8192)), 1.5);
    EXPECT_DOUBLE_EQ(
        provisioningFactor(priv, sparseSliceParams(8, 2048)), 1.0);
}

TEST(CmpSystem, SharedL2RoutesInstructionAndDataSeparately)
{
    auto cfg = tinyConfig(CmpConfigKind::SharedL2, DirectoryKind::Cuckoo);
    CmpSystem sys(cfg);
    EXPECT_EQ(sys.numCaches(), 8u); // 4 cores x (I + D)

    MemAccess instr{0, 0x100, false, true};
    MemAccess data{0, 0x200, false, false};
    sys.access(instr);
    sys.access(data);
    EXPECT_TRUE(sys.cache(0).contains(0x100));  // core 0 I-cache
    EXPECT_FALSE(sys.cache(0).contains(0x200));
    EXPECT_TRUE(sys.cache(1).contains(0x200));  // core 0 D-cache
}

TEST(CmpSystem, PrivateL2UnifiesInstructionAndData)
{
    auto cfg =
        tinyConfig(CmpConfigKind::PrivateL2, DirectoryKind::Cuckoo);
    CmpSystem sys(cfg);
    EXPECT_EQ(sys.numCaches(), 4u);
    sys.access({2, 0x100, false, true});
    sys.access({2, 0x200, false, false});
    EXPECT_TRUE(sys.cache(2).contains(0x100));
    EXPECT_TRUE(sys.cache(2).contains(0x200));
}

TEST(CmpSystem, WriteInvalidatesRemoteCopies)
{
    auto cfg =
        tinyConfig(CmpConfigKind::PrivateL2, DirectoryKind::Cuckoo);
    CmpSystem sys(cfg);
    // Cores 0..2 read block 0x40; core 3 writes it.
    for (CoreId c = 0; c < 3; ++c)
        sys.access({c, 0x40, false, false});
    sys.access({3, 0x40, true, false});
    EXPECT_FALSE(sys.cache(0).contains(0x40));
    EXPECT_FALSE(sys.cache(1).contains(0x40));
    EXPECT_FALSE(sys.cache(2).contains(0x40));
    EXPECT_TRUE(sys.cache(3).contains(0x40));
    EXPECT_EQ(sys.stats().sharingInvalidations, 3u);
    // Directory tracks only the writer now.
    DynamicBitset sharers;
    ASSERT_TRUE(sys.slice(0x40 % 4).probe(0x40 / 4, &sharers));
    EXPECT_TRUE(sharers.test(3));
    EXPECT_FALSE(sharers.test(0));
}

TEST(CmpSystem, UpgradeOnCleanWriteHitInvalidatesPeers)
{
    auto cfg =
        tinyConfig(CmpConfigKind::PrivateL2, DirectoryKind::Cuckoo);
    CmpSystem sys(cfg);
    sys.access({0, 0x40, false, false});
    sys.access({1, 0x40, false, false});
    // Core 0 hits its clean copy with a write -> upgrade through home.
    sys.access({0, 0x40, true, false});
    EXPECT_TRUE(sys.cache(0).contains(0x40));
    EXPECT_FALSE(sys.cache(1).contains(0x40));
    EXPECT_EQ(sys.stats().writeUpgrades, 1u);
}

TEST(CmpSystem, EvictionRetiresSharerAndFreesEntry)
{
    auto cfg =
        tinyConfig(CmpConfigKind::PrivateL2, DirectoryKind::Cuckoo);
    cfg.privateCache = CacheConfig{1, 1}; // single-frame cache
    CmpSystem sys(cfg);
    sys.access({0, 0x10, false, false});
    EXPECT_TRUE(sys.slice(0x10 % 4).probe(0x10 / 4));
    // Second block evicts the first; its directory entry must empty.
    sys.access({0, 0x20, false, false});
    EXPECT_FALSE(sys.slice(0x10 % 4).probe(0x10 / 4));
    EXPECT_TRUE(sys.slice(0x20 % 4).probe(0x20 / 4));
    EXPECT_EQ(sys.stats().cacheEvictions, 1u);
}

TEST(CmpSystem, SliceInterleavingByLowBits)
{
    auto cfg =
        tinyConfig(CmpConfigKind::PrivateL2, DirectoryKind::Cuckoo);
    CmpSystem sys(cfg);
    sys.access({0, 5, false, false}); // slice 1 (5 mod 4)
    EXPECT_TRUE(sys.slice(1).probe(1)); // tag 5>>2 = 1
    EXPECT_FALSE(sys.slice(0).probe(1));
}

struct SimCase
{
    CmpConfigKind config;
    DirectoryKind dir;
};

std::string
simCaseName(const testing::TestParamInfo<SimCase> &info)
{
    return std::string(info.param.config == CmpConfigKind::SharedL2
                           ? "SharedL2_"
                           : "PrivateL2_") +
           directoryKindName(info.param.dir);
}

class SimInvariant : public testing::TestWithParam<SimCase>
{};

TEST_P(SimInvariant, DirectoryCoversCachesUnderRandomLoad)
{
    // Inclusion invariant (§2): every privately cached block is tracked
    // by its home slice, for every organization and both cache
    // hierarchies, throughout a random run.
    auto cfg = tinyConfig(GetParam().config, GetParam().dir);
    CmpSystem sys(cfg);
    SyntheticWorkload w(tinyWorkload());
    for (int round = 0; round < 20; ++round) {
        sys.run(w, 2000);
        ASSERT_TRUE(sys.directoryCoversCaches()) << "round " << round;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, SimInvariant,
    testing::Values(
        SimCase{CmpConfigKind::SharedL2, DirectoryKind::Cuckoo},
        SimCase{CmpConfigKind::SharedL2, DirectoryKind::Sparse},
        SimCase{CmpConfigKind::SharedL2, DirectoryKind::Skewed},
        SimCase{CmpConfigKind::SharedL2, DirectoryKind::DuplicateTag},
        SimCase{CmpConfigKind::SharedL2, DirectoryKind::Tagless},
        SimCase{CmpConfigKind::SharedL2, DirectoryKind::InCache},
        SimCase{CmpConfigKind::PrivateL2, DirectoryKind::Cuckoo},
        SimCase{CmpConfigKind::PrivateL2, DirectoryKind::Sparse},
        SimCase{CmpConfigKind::PrivateL2, DirectoryKind::Skewed},
        SimCase{CmpConfigKind::PrivateL2, DirectoryKind::DuplicateTag},
        SimCase{CmpConfigKind::PrivateL2, DirectoryKind::Tagless}),
    simCaseName);

TEST(CmpSystem, OccupancySamplingIsBounded)
{
    auto cfg = tinyConfig(CmpConfigKind::SharedL2, DirectoryKind::Cuckoo);
    CmpSystem sys(cfg);
    SyntheticWorkload w(tinyWorkload());
    sys.run(w, 20000, 500);
    const double occ = sys.stats().directoryOccupancy.mean();
    EXPECT_GT(occ, 0.0);
    EXPECT_LE(occ, 1.0);
    EXPECT_GT(sys.stats().directoryOccupancy.count(), 10u);
}

TEST(CmpSystem, AggregateStatsSumSlices)
{
    auto cfg = tinyConfig(CmpConfigKind::SharedL2, DirectoryKind::Cuckoo);
    CmpSystem sys(cfg);
    SyntheticWorkload w(tinyWorkload());
    sys.run(w, 10000);
    const auto agg = sys.aggregateDirectoryStats();
    std::uint64_t lookups = 0;
    for (std::size_t s = 0; s < sys.numSlices(); ++s)
        lookups += sys.slice(s).stats().lookups;
    EXPECT_EQ(agg.lookups, lookups);
    EXPECT_GT(agg.insertions, 0u);
    EXPECT_EQ(agg.attemptHistogram.count(), agg.insertions);
}

TEST(CmpSystem, ResetStatsPreservesState)
{
    auto cfg =
        tinyConfig(CmpConfigKind::PrivateL2, DirectoryKind::Cuckoo);
    CmpSystem sys(cfg);
    sys.access({0, 0x8, false, false});
    sys.resetStats();
    EXPECT_EQ(sys.stats().accesses, 0u);
    EXPECT_TRUE(sys.cache(0).contains(0x8));
    EXPECT_TRUE(sys.slice(0).probe(0x8 / 4));
}

TEST(CmpSystem, ForcedInvalidationsRemoveCachedBlocks)
{
    // Under-provisioned Sparse directory: conflicts must invalidate
    // live cached blocks and be counted.
    auto cfg = tinyConfig(CmpConfigKind::SharedL2, DirectoryKind::Sparse);
    cfg.directory.ways = 1;
    cfg.directory.sets = 8; // 8 entries per slice, far below demand
    CmpSystem sys(cfg);
    SyntheticWorkload w(tinyWorkload());
    sys.run(w, 20000);
    EXPECT_GT(sys.stats().forcedInvalidations, 0u);
    ASSERT_TRUE(sys.directoryCoversCaches());
}

// --- experiment driver ---------------------------------------------------------

TEST(Experiment, RunsAndReportsMetrics)
{
    auto cfg = tinyConfig(CmpConfigKind::SharedL2, DirectoryKind::Cuckoo);
    ExperimentOptions opts;
    opts.warmupAccesses = 5000;
    opts.measureAccesses = 20000;
    opts.occupancySampleEvery = 1000;
    const auto res = runExperiment(cfg, tinyWorkload(), opts);
    EXPECT_GT(res.avgInsertionAttempts, 0.99);
    EXPECT_GE(res.forcedInvalidationRate, 0.0);
    EXPECT_GT(res.avgOccupancy, 0.0);
    EXPECT_LE(res.avgOccupancy, 1.0);
    EXPECT_EQ(res.organization.substr(0, 6), "Cuckoo");
    EXPECT_GT(res.directory.insertions, 0u);
    EXPECT_EQ(res.system.accesses, 20000u);
}

TEST(Experiment, DeterministicAcrossRuns)
{
    auto cfg =
        tinyConfig(CmpConfigKind::PrivateL2, DirectoryKind::Cuckoo);
    ExperimentOptions opts;
    opts.warmupAccesses = 2000;
    opts.measureAccesses = 10000;
    const auto a = runExperiment(cfg, tinyWorkload(), opts);
    const auto b = runExperiment(cfg, tinyWorkload(), opts);
    EXPECT_EQ(a.directory.insertions, b.directory.insertions);
    EXPECT_EQ(a.directory.forcedEvictions, b.directory.forcedEvictions);
    EXPECT_DOUBLE_EQ(a.avgOccupancy, b.avgOccupancy);
}

} // namespace
} // namespace cdir
