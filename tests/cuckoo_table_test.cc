/**
 * @file
 * Unit and property tests for the d-ary Cuckoo hash table (§4.1/§4.2):
 * insertion with displacement, attempt accounting, the bounded give-up
 * path, way utilization, and the paper's occupancy claims from §5.1.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hh"
#include "common/stats.hh"
#include "directory/cuckoo_table.hh"
#include "hash/hash_family.hh"

namespace cdir {
namespace {

using Table = CuckooTable<int>;

std::unique_ptr<HashFamily>
strongFamily(unsigned ways, std::size_t sets, std::uint64_t seed = 1)
{
    return makeHashFamily(HashKind::Strong, ways, sets, seed);
}

TEST(CuckooTable, InsertThenFind)
{
    auto family = strongFamily(4, 64);
    Table table(*family);
    auto res = table.insert(42, 7);
    EXPECT_EQ(res.attempts, 1u);
    EXPECT_FALSE(res.discarded);
    ASSERT_NE(table.find(42), nullptr);
    EXPECT_EQ(*table.find(42), 7);
    EXPECT_EQ(table.size(), 1u);
}

TEST(CuckooTable, FindMissingReturnsNull)
{
    auto family = strongFamily(4, 64);
    Table table(*family);
    EXPECT_EQ(table.find(1), nullptr);
    table.insert(1, 1);
    EXPECT_EQ(table.find(2), nullptr);
}

TEST(CuckooTable, EraseReturnsPayload)
{
    auto family = strongFamily(4, 64);
    Table table(*family);
    table.insert(5, 50);
    auto payload = table.erase(5);
    ASSERT_TRUE(payload.has_value());
    EXPECT_EQ(*payload, 50);
    EXPECT_EQ(table.find(5), nullptr);
    EXPECT_EQ(table.size(), 0u);
    EXPECT_FALSE(table.erase(5).has_value());
}

TEST(CuckooTable, CapacityIsWaysTimesSets)
{
    auto family = strongFamily(3, 128);
    Table table(*family);
    EXPECT_EQ(table.capacity(), 3u * 128u);
    EXPECT_EQ(table.numWays(), 3u);
    EXPECT_EQ(table.setsPerWay(), 128u);
}

TEST(CuckooTable, DisplacementPreservesAllElements)
{
    // Fill to 50% occupancy; every inserted element must remain findable
    // even though displacements moved entries between ways.
    auto family = strongFamily(4, 256);
    Table table(*family);
    Rng rng(9);
    std::map<Tag, int> truth;
    while (table.size() < table.capacity() / 2) {
        const Tag tag = rng.next() >> 8;
        if (truth.count(tag))
            continue;
        const int value = static_cast<int>(truth.size());
        auto res = table.insert(tag, int{value});
        ASSERT_FALSE(res.discarded);
        truth[tag] = value;
    }
    EXPECT_EQ(table.size(), truth.size());
    for (const auto &[tag, value] : truth) {
        ASSERT_NE(table.find(tag), nullptr) << "lost tag " << tag;
        EXPECT_EQ(*table.find(tag), value);
    }
}

TEST(CuckooTable, ForEachVisitsEverything)
{
    auto family = strongFamily(3, 64);
    Table table(*family);
    std::set<Tag> inserted;
    Rng rng(13);
    for (int i = 0; i < 50; ++i) {
        const Tag tag = rng.next() >> 4;
        if (inserted.insert(tag).second)
            table.insert(tag, 1);
    }
    std::set<Tag> visited;
    table.forEach([&](Tag tag, const int &) { visited.insert(tag); });
    EXPECT_EQ(visited, inserted);
}

TEST(CuckooTable, GiveUpDiscardsMostRecentlyDisplaced)
{
    // A tiny table with few attempts must eventually discard; the
    // discarded element is reported with its payload, and the table
    // stays consistent.
    auto family = strongFamily(2, 4, 3);
    Table table(*family, 8);
    Rng rng(17);
    std::set<Tag> live;
    bool saw_discard = false;
    for (int i = 0; i < 200; ++i) {
        const Tag tag = rng.next() >> 3;
        if (live.count(tag) || table.find(tag))
            continue;
        auto res = table.insert(tag, 0);
        live.insert(tag);
        if (res.discarded) {
            saw_discard = true;
            EXPECT_LE(res.attempts, 8u);
            EXPECT_TRUE(res.discardedPayload.has_value());
            EXPECT_EQ(table.find(res.discardedTag), nullptr);
            live.erase(res.discardedTag);
        }
        ASSERT_LE(table.size(), table.capacity());
        ASSERT_EQ(table.size(), live.size());
        for (Tag t : live)
            ASSERT_NE(table.find(t), nullptr);
    }
    EXPECT_TRUE(saw_discard);
}

TEST(CuckooTable, AttemptsBoundedByMax)
{
    auto family = strongFamily(2, 8, 5);
    Table table(*family, 32);
    Rng rng(19);
    for (int i = 0; i < 500; ++i) {
        const Tag tag = rng.next() >> 2;
        if (table.find(tag))
            continue;
        auto res = table.insert(tag, 0);
        ASSERT_GE(res.attempts, 1u);
        ASSERT_LE(res.attempts, 32u);
    }
}

TEST(CuckooTable, VacantCandidateMeansOneAttempt)
{
    // At very low occupancy, insertions always succeed immediately.
    auto family = strongFamily(4, 1024);
    Table table(*family);
    Rng rng(23);
    for (int i = 0; i < 100; ++i) {
        const Tag tag = rng.next();
        if (table.find(tag))
            continue;
        auto res = table.insert(tag, 0);
        ASSERT_EQ(res.attempts, 1u);
    }
}

TEST(CuckooTable, WaysFillUniformly)
{
    // The round-robin start way keeps way occupancies close (§4.2).
    auto family = strongFamily(4, 512);
    Table table(*family);
    Rng rng(29);
    while (table.occupancy() < 0.5) {
        const Tag tag = rng.next() >> 4;
        if (!table.find(tag))
            table.insert(tag, 0);
    }
    for (unsigned w = 0; w < 4; ++w)
        EXPECT_NEAR(table.wayOccupancy(w), 0.5, 0.1) << "way " << w;
}

// --- §5.1 paper properties, parameterized over arity -------------------------

class CuckooOccupancy : public testing::TestWithParam<unsigned>
{};

TEST_P(CuckooOccupancy, FiftyPercentNeverFailsForThreeAryAndWider)
{
    const unsigned ways = GetParam();
    if (ways < 3)
        GTEST_SKIP() << "claim applies to 3-ary and wider (§5.1)";
    auto family = strongFamily(ways, 1024, 101 + ways);
    Table table(*family);
    Rng rng(31);
    RunningMean attempts;
    while (table.occupancy() < 0.5) {
        const Tag tag = rng.next() >> 4;
        if (table.find(tag))
            continue;
        auto res = table.insert(tag, 0);
        ASSERT_FALSE(res.discarded)
            << "failure below 50% occupancy in " << ways << "-ary";
        attempts.add(res.attempts);
    }
    // "...successfully inserting all directory entries, on average,
    // after only two attempts" (§5.1).
    EXPECT_LT(attempts.mean(), 2.0);
}

TEST_P(CuckooOccupancy, HighOccupancyIsReachable)
{
    // d-ary cuckoo tables reach high load factors before failing
    // (Fotakis et al.): 3-ary ~90%, 4-ary ~97%.
    const unsigned ways = GetParam();
    auto family = strongFamily(ways, 1024, 7 + ways);
    Table table(*family);
    Rng rng(37);
    double max_occupancy = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const Tag tag = rng.next() >> 4;
        if (table.find(tag))
            continue;
        auto res = table.insert(tag, 0);
        if (!res.discarded)
            max_occupancy = std::max(max_occupancy, table.occupancy());
    }
    if (ways == 2)
        EXPECT_GT(max_occupancy, 0.45);
    else
        EXPECT_GT(max_occupancy, 0.80);
}

INSTANTIATE_TEST_SUITE_P(Arity, CuckooOccupancy,
                         testing::Values(2u, 3u, 4u, 8u),
                         [](const auto &info) {
                             return std::to_string(info.param) + "ary";
                         });

TEST(CuckooTable, SkewingHashesWorkToo)
{
    auto family = makeHashFamily(HashKind::Skewing, 4, 256);
    Table table(*family);
    Rng rng(41);
    std::set<Tag> live;
    while (table.occupancy() < 0.5) {
        const Tag tag = rng.next() >> 10;
        if (table.find(tag))
            continue;
        auto res = table.insert(tag, 0);
        if (!res.discarded)
            live.insert(tag);
        else
            live.erase(res.discardedTag);
    }
    for (Tag t : live)
        ASSERT_NE(table.find(t), nullptr);
}

} // namespace
} // namespace cdir
