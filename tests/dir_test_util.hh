/**
 * @file
 * Shared test helper: drive a single directory request through the
 * batched context protocol and return an owning snapshot.
 *
 * The tests used to call the value-returning
 * `Directory::access(tag, cache, is_write)` shim; that shim has been
 * removed, so tests exercise the context protocol directly through
 * this helper instead (value semantics are fine off the hot path).
 */

#ifndef CDIR_TESTS_DIR_TEST_UTIL_HH
#define CDIR_TESTS_DIR_TEST_UTIL_HH

#include "directory/directory.hh"

namespace cdir::test {

/** One request through the context protocol; snapshot of its outcome. */
inline DirAccessResult
accessDir(Directory &dir, Tag tag, CacheId cache, bool is_write)
{
    DirAccessContext ctx = dir.makeContext();
    dir.access(DirRequest{tag, cache, is_write}, ctx);
    return ctx.snapshot(0);
}

} // namespace cdir::test

#endif // CDIR_TESTS_DIR_TEST_UTIL_HH
