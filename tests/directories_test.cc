/**
 * @file
 * Unit, integration and property tests for every directory organization
 * behind the common Directory interface: protocol semantics (sharer
 * tracking, write invalidation vectors, eviction retirement), the
 * conflict behaviours that differentiate the organizations (§3/§4), and
 * a randomized cross-organization equivalence check against a reference
 * model.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hh"
#include "directory/assoc_directory.hh"
#include "directory/cuckoo_directory.hh"
#include "directory/directory.hh"
#include "directory/duplicate_tag_directory.hh"
#include "directory/in_cache_directory.hh"
#include "directory/tagless_directory.hh"

#include "dir_test_util.hh"

namespace cdir {
namespace {

constexpr std::size_t kCaches = 16;

/** Factory wrapper covering every organization for the shared suite. */
std::unique_ptr<Directory>
makeOrg(DirectoryKind kind)
{
    DirectoryParams p;
    p.kind = kind;
    p.numCaches = kCaches;
    switch (kind) {
      case DirectoryKind::Cuckoo:
        p.ways = 4;
        p.sets = 256;
        break;
      case DirectoryKind::Sparse:
        p.ways = 8;
        p.sets = 128;
        break;
      case DirectoryKind::Skewed:
      case DirectoryKind::Elbow:
        p.ways = 4;
        p.sets = 256;
        break;
      case DirectoryKind::DuplicateTag:
        p.sets = 64;
        p.trackedCacheAssoc = 4;
        break;
      case DirectoryKind::InCache:
        p.ways = 16;
        p.sets = 64;
        break;
      case DirectoryKind::Tagless:
        p.sets = 64;
        p.taglessBucketBits = 128;
        break;
    }
    return makeDirectory(p);
}

std::string
kindName(const testing::TestParamInfo<DirectoryKind> &info)
{
    return directoryKindName(info.param);
}

const DirectoryKind kAllKinds[] = {
    DirectoryKind::Cuckoo,       DirectoryKind::Sparse,
    DirectoryKind::Skewed,       DirectoryKind::DuplicateTag,
    DirectoryKind::InCache,      DirectoryKind::Tagless,
};

class DirectoryProtocol : public testing::TestWithParam<DirectoryKind>
{
  protected:
    void SetUp() override
    {
        dir = makeOrg(GetParam());
        ASSERT_NE(dir, nullptr);
    }
    std::unique_ptr<Directory> dir;
};

TEST_P(DirectoryProtocol, StartsEmpty)
{
    EXPECT_EQ(dir->validEntries(), 0u);
    EXPECT_GT(dir->capacity(), 0u);
    EXPECT_EQ(dir->occupancy(), 0.0);
    EXPECT_FALSE(dir->probe(0x123));
}

TEST_P(DirectoryProtocol, ReadMissAllocatesEntry)
{
    auto res = test::accessDir(*dir, 0x10, 3, false);
    EXPECT_FALSE(res.hit);
    EXPECT_TRUE(res.inserted);
    EXPECT_GE(res.attempts, 1u);
    EXPECT_TRUE(dir->probe(0x10));
    EXPECT_EQ(dir->validEntries(), 1u);
}

TEST_P(DirectoryProtocol, SecondReaderHits)
{
    test::accessDir(*dir, 0x10, 3, false);
    auto res = test::accessDir(*dir, 0x10, 5, false);
    EXPECT_TRUE(res.hit);
    DynamicBitset sharers;
    ASSERT_TRUE(dir->probe(0x10, &sharers));
    EXPECT_TRUE(sharers.test(3));
    EXPECT_TRUE(sharers.test(5));
}

TEST_P(DirectoryProtocol, WriteInvalidatesOtherSharers)
{
    test::accessDir(*dir, 0x20, 1, false);
    test::accessDir(*dir, 0x20, 2, false);
    test::accessDir(*dir, 0x20, 3, false);
    auto res = test::accessDir(*dir, 0x20, 1, true);
    EXPECT_TRUE(res.hit);
    ASSERT_TRUE(res.hadSharerInvalidations);
    EXPECT_FALSE(res.sharerInvalidations.test(1)); // writer excluded
    EXPECT_TRUE(res.sharerInvalidations.test(2));
    EXPECT_TRUE(res.sharerInvalidations.test(3));
}

TEST_P(DirectoryProtocol, WriteBySoleSharerInvalidatesNobody)
{
    test::accessDir(*dir, 0x30, 4, false);
    auto res = test::accessDir(*dir, 0x30, 4, true);
    EXPECT_FALSE(res.hadSharerInvalidations);
}

TEST_P(DirectoryProtocol, WriteMissByNewCacheInvalidatesExistingSharers)
{
    test::accessDir(*dir, 0x40, 0, false);
    test::accessDir(*dir, 0x40, 1, false);
    auto res = test::accessDir(*dir, 0x40, 7, true);
    ASSERT_TRUE(res.hadSharerInvalidations);
    EXPECT_TRUE(res.sharerInvalidations.test(0));
    EXPECT_TRUE(res.sharerInvalidations.test(1));
    EXPECT_FALSE(res.sharerInvalidations.test(7));
    // After the write the writer must be tracked as a holder.
    DynamicBitset sharers;
    ASSERT_TRUE(dir->probe(0x40, &sharers));
    EXPECT_TRUE(sharers.test(7));
}

TEST_P(DirectoryProtocol, LastEvictionFreesEntry)
{
    test::accessDir(*dir, 0x50, 2, false);
    test::accessDir(*dir, 0x50, 6, false);
    dir->removeSharer(0x50, 2);
    EXPECT_TRUE(dir->probe(0x50));
    dir->removeSharer(0x50, 6);
    EXPECT_FALSE(dir->probe(0x50));
    EXPECT_EQ(dir->validEntries(), 0u);
}

TEST_P(DirectoryProtocol, RemoveUnknownSharerIsHarmless)
{
    test::accessDir(*dir, 0x60, 1, false);
    dir->removeSharer(0x60, 9);   // never a sharer
    dir->removeSharer(0x999, 1);  // tag not tracked
    EXPECT_TRUE(dir->probe(0x60));
}

TEST_P(DirectoryProtocol, SharersNeverFalseNegative)
{
    // Randomized protocol property: every true holder must always be
    // covered by probe()'s target set.
    Rng rng(77);
    std::map<Tag, std::set<CacheId>> truth;
    for (int step = 0; step < 4000; ++step) {
        const Tag tag = rng.below(64); // few tags -> lots of sharing
        const auto cache = static_cast<CacheId>(rng.below(kCaches));
        const double roll = rng.uniform();
        if (roll < 0.5) {
            // read
            if (!truth[tag].count(cache)) {
                auto res = test::accessDir(*dir, tag, cache, false);
                truth[tag].insert(cache);
                for (const auto &ev : res.forcedEvictions)
                    truth.erase(ev.tag);
            }
        } else if (roll < 0.75) {
            // write
            if (truth.count(tag) && truth[tag].count(cache) &&
                truth[tag].size() == 1) {
                continue; // sole owner write: no protocol change
            }
            auto res = test::accessDir(*dir, tag, cache, true);
            truth[tag] = {cache};
            for (const auto &ev : res.forcedEvictions)
                truth.erase(ev.tag);
        } else {
            // eviction of a random true sharer
            auto it = truth.find(tag);
            if (it != truth.end() && !it->second.empty()) {
                const CacheId victim = *it->second.begin();
                dir->removeSharer(tag, victim);
                it->second.erase(victim);
                if (it->second.empty())
                    truth.erase(it);
            }
        }
        // Verify coverage of every tracked tag.
        for (const auto &[t, sharers] : truth) {
            if (sharers.empty())
                continue;
            DynamicBitset targets;
            ASSERT_TRUE(dir->probe(t, &targets))
                << "tag " << t << " lost at step " << step;
            for (CacheId c : sharers)
                ASSERT_TRUE(targets.test(c))
                    << "cache " << c << " missing at step " << step;
        }
    }
}

TEST_P(DirectoryProtocol, StatsCountInsertionsAndHits)
{
    test::accessDir(*dir, 1, 0, false);
    test::accessDir(*dir, 1, 1, false);
    test::accessDir(*dir, 2, 0, false);
    const auto &s = dir->stats();
    EXPECT_EQ(s.lookups, 3u);
    EXPECT_EQ(s.insertions, 2u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.sharerAdds, 1u);
}

TEST_P(DirectoryProtocol, ResetStatsKeepsEntries)
{
    test::accessDir(*dir, 1, 0, false);
    dir->resetStats();
    EXPECT_EQ(dir->stats().lookups, 0u);
    EXPECT_TRUE(dir->probe(1));
}

TEST_P(DirectoryProtocol, NameIsNonEmpty)
{
    EXPECT_FALSE(dir->name().empty());
}

INSTANTIATE_TEST_SUITE_P(AllOrganizations, DirectoryProtocol,
                         testing::ValuesIn(kAllKinds), kindName);

// --- conflict behaviour differentiating the organizations -------------------

TEST(SparseDirectory, ConflictForcesEviction)
{
    // 2-way sparse with 4 sets: three tags in the same set conflict
    // (the Fig. 3 example).
    auto dir = makeSparseDirectory(kCaches, 2, 4);
    test::accessDir(*dir, 0x00, 0, false); // set 0
    test::accessDir(*dir, 0x04, 1, false); // set 0
    auto res = test::accessDir(*dir, 0x08, 2, false); // set 0 again -> conflict
    ASSERT_EQ(res.forcedEvictions.size(), 1u);
    EXPECT_EQ(res.forcedEvictions[0].tag, 0x00u); // LRU victim
    EXPECT_TRUE(res.forcedEvictions[0].targets.test(0));
    EXPECT_EQ(dir->stats().forcedEvictions, 1u);
    EXPECT_FALSE(dir->probe(0x00));
}

TEST(SparseDirectory, EvictedEntryTargetsAllSharers)
{
    auto dir = makeSparseDirectory(kCaches, 1, 4);
    test::accessDir(*dir, 0x00, 3, false);
    test::accessDir(*dir, 0x00, 9, false);
    auto res = test::accessDir(*dir, 0x04, 1, false);
    ASSERT_EQ(res.forcedEvictions.size(), 1u);
    EXPECT_TRUE(res.forcedEvictions[0].targets.test(3));
    EXPECT_TRUE(res.forcedEvictions[0].targets.test(9));
    EXPECT_EQ(dir->stats().forcedBlockInvalidations, 2u);
}

TEST(CuckooDirectory, DisplacementAvoidsSparseConflict)
{
    // The same transitive-conflict pattern that forces a Sparse
    // eviction is absorbed by displacement in the Cuckoo organization:
    // insertion into a near-empty 4x256 table never discards.
    CuckooDirectory dir(kCaches, 4, 256, SharerFormat::FullVector);
    Rng rng(5);
    for (int i = 0; i < 256; ++i) { // 25% occupancy
        auto res = test::accessDir(dir, rng.next() >> 8, 0, false);
        ASSERT_TRUE(res.inserted);
        ASSERT_TRUE(res.forcedEvictions.empty());
    }
    EXPECT_EQ(dir.stats().forcedEvictions, 0u);
}

TEST(CuckooDirectory, AttemptsRecordedInHistogram)
{
    CuckooDirectory dir(kCaches, 4, 64, SharerFormat::FullVector);
    Rng rng(6);
    int inserts = 0;
    while (dir.occupancy() < 0.5) {
        const Tag tag = rng.next() >> 8;
        if (dir.probe(tag))
            continue;
        test::accessDir(dir, tag, 0, false);
        ++inserts;
    }
    const auto &h = dir.stats().attemptHistogram;
    EXPECT_EQ(h.count(), static_cast<std::uint64_t>(inserts));
    EXPECT_GT(h.at(1), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), dir.stats().insertionAttempts.mean());
}

TEST(CuckooDirectory, GiveUpInvalidatesDiscardedEntry)
{
    // Tiny 2-ary table, low bound: force the give-up path and check the
    // discarded entry's sharers are reported for invalidation.
    CuckooDirectory dir(kCaches, 2, 4, SharerFormat::FullVector,
                        HashKind::Strong, 4);
    Rng rng(7);
    bool saw_discard = false;
    for (int i = 0; i < 300 && !saw_discard; ++i) {
        const Tag tag = rng.next() >> 3;
        if (dir.probe(tag))
            continue;
        auto res = test::accessDir(dir, tag, static_cast<CacheId>(i % kCaches),
                              false);
        if (res.insertDiscarded) {
            saw_discard = true;
            ASSERT_EQ(res.forcedEvictions.size(), 1u);
            EXPECT_GE(res.forcedEvictions[0].targets.count(), 1u);
            EXPECT_FALSE(dir.probe(res.forcedEvictions[0].tag));
        }
    }
    EXPECT_TRUE(saw_discard);
    EXPECT_GT(dir.stats().insertFailures, 0u);
    EXPECT_EQ(dir.stats().insertFailures, dir.stats().forcedEvictions);
}

TEST(SkewedDirectory, BreaksDirectConflictsButStillEvicts)
{
    // Skewing spreads same-set tags, but with enough colliding inserts
    // the skewed directory must evict (no displacement), unlike Cuckoo.
    auto skewed = makeSkewedDirectory(kCaches, 4, 64);
    Rng rng(8);
    // Fill well past capacity.
    for (int i = 0; i < 2000; ++i)
        test::accessDir(*skewed, rng.next() >> 8, 0, false);
    EXPECT_GT(skewed->stats().forcedEvictions, 0u);
}

TEST(SkewedVsSparse, SkewedHasFewerConflictsAtEqualSize)
{
    // The Fig. 12 ordering: Skewed 2x < Sparse 2x in invalidation rate
    // under a skewed (hot-set) insertion pattern.
    auto sparse = makeSparseDirectory(kCaches, 4, 64);
    auto skewed = makeSkewedDirectory(kCaches, 4, 64);
    Rng rng(9);
    for (int i = 0; i < 4000; ++i) {
        // Bias low index bits to create hot sets.
        const Tag tag = (rng.next() >> 8 << 4) | (rng.below(4));
        test::accessDir(*sparse, tag, 0, false);
        test::accessDir(*skewed, tag, 0, false);
    }
    EXPECT_LT(skewed->stats().forcedInvalidationRate(),
              sparse->stats().forcedInvalidationRate());
}

TEST(CuckooVsAll, LowestInvalidationRateAtHalfCapacity)
{
    // Integration slice of Fig. 12: identical reference stream at ~0.5x
    // the sparse capacity; Cuckoo must force (near-)zero invalidations.
    auto cuckoo = std::make_unique<CuckooDirectory>(
        kCaches, 4, 128, SharerFormat::FullVector);
    auto sparse = makeSparseDirectory(kCaches, 8, 128); // 2x capacity
    auto skewed = makeSkewedDirectory(kCaches, 4, 256); // 2x capacity
    Rng rng(10);
    std::vector<Tag> live;
    for (int i = 0; i < 30000; ++i) {
        if (!live.empty() && rng.chance(0.55)) {
            // retire a random live tag (cache eviction)
            const std::size_t k = rng.below(live.size());
            cuckoo->removeSharer(live[k], 0);
            sparse->removeSharer(live[k], 0);
            skewed->removeSharer(live[k], 0);
            live[k] = live.back();
            live.pop_back();
        } else if (live.size() <
                   cuckoo->capacity() / 2) { // cap footprint at 0.5x
            const Tag tag = rng.next() >> 8;
            test::accessDir(*cuckoo, tag, 0, false);
            test::accessDir(*sparse, tag, 0, false);
            test::accessDir(*skewed, tag, 0, false);
            live.push_back(tag);
        }
    }
    EXPECT_EQ(cuckoo->stats().forcedEvictions, 0u);
    EXPECT_LE(cuckoo->stats().forcedInvalidationRate(),
              sparse->stats().forcedInvalidationRate());
    EXPECT_LE(cuckoo->stats().forcedInvalidationRate(),
              skewed->stats().forcedInvalidationRate());
}

// --- Duplicate-Tag specifics -------------------------------------------------

TEST(DuplicateTag, MirrorsCacheFramesWithoutConflicts)
{
    // One frame per (set, cache, way): filling a cache's mirrored ways
    // with distinct sets never forces an eviction when evictions are
    // reported first.
    DuplicateTagDirectory dir(4, 16, 2);
    for (Tag t = 0; t < 32; ++t) { // 16 sets x 2 ways
        auto res = test::accessDir(dir, t, 1, false);
        ASSERT_TRUE(res.forcedEvictions.empty()) << "tag " << t;
    }
    EXPECT_EQ(dir.validEntries(), 32u);
    // A further allocation in a full set without an eviction report
    // falls back to mirroring the cache's LRU eviction.
    auto res = test::accessDir(dir, 32, 1, false);
    EXPECT_EQ(res.forcedEvictions.size(), 1u);
}

TEST(DuplicateTag, LookupWidthIsCachesTimesAssoc)
{
    DuplicateTagDirectory dir(16, 64, 2);
    EXPECT_EQ(dir.lookupWidth(), 32u);
    DuplicateTagDirectory t2(32, 64, 16);
    EXPECT_EQ(t2.lookupWidth(), 512u); // OpenSPARC-T2-like widths
}

TEST(DuplicateTag, WriteClearsOtherMirrors)
{
    DuplicateTagDirectory dir(4, 16, 2);
    test::accessDir(dir, 5, 0, false);
    test::accessDir(dir, 5, 1, false);
    test::accessDir(dir, 5, 2, false);
    auto res = test::accessDir(dir, 5, 0, true);
    ASSERT_TRUE(res.hadSharerInvalidations);
    DynamicBitset sharers;
    ASSERT_TRUE(dir.probe(5, &sharers));
    EXPECT_TRUE(sharers.test(0));
    EXPECT_FALSE(sharers.test(1));
    EXPECT_FALSE(sharers.test(2));
}

// --- Tagless specifics --------------------------------------------------------

TEST(Tagless, SupersetNeverMissesSharer)
{
    TaglessDirectory dir(8, 16, 64, 2, 3);
    Rng rng(11);
    std::map<Tag, std::set<CacheId>> truth;
    for (int i = 0; i < 2000; ++i) {
        const Tag tag = rng.below(256);
        const auto cache = static_cast<CacheId>(rng.below(8));
        if (rng.chance(0.6)) {
            if (!truth[tag].count(cache)) {
                test::accessDir(dir, tag, cache, false);
                truth[tag].insert(cache);
            }
        } else {
            auto it = truth.find(tag);
            if (it != truth.end() && it->second.count(cache)) {
                dir.removeSharer(tag, cache);
                it->second.erase(cache);
            }
        }
        DynamicBitset targets;
        dir.probe(tag, &targets);
        for (CacheId c : truth[tag])
            ASSERT_TRUE(targets.test(c)) << "step " << i;
    }
}

TEST(Tagless, CountsSpuriousInvalidations)
{
    // Tiny filters alias heavily: spurious invalidations must be
    // observed and counted on writes.
    TaglessDirectory dir(8, 4, 8, 1, 5);
    Rng rng(12);
    for (int i = 0; i < 3000; ++i) {
        const Tag tag = rng.below(512);
        const auto cache = static_cast<CacheId>(rng.below(8));
        test::accessDir(dir, tag, cache, rng.chance(0.4));
    }
    EXPECT_GT(dir.spuriousInvalidations(), 0u);
}

TEST(Tagless, NeverForcesEvictions)
{
    TaglessDirectory dir(8, 16, 64, 2, 13);
    Rng rng(13);
    for (int i = 0; i < 5000; ++i)
        test::accessDir(dir, rng.next() >> 8, static_cast<CacheId>(rng.below(8)),
                   rng.chance(0.3));
    EXPECT_EQ(dir.stats().forcedEvictions, 0u);
}

// --- In-Cache specifics --------------------------------------------------------

TEST(InCache, NameAndGeometry)
{
    InCacheDirectory dir(kCaches, 16, 64);
    EXPECT_EQ(dir.capacity(), 16u * 64u);
    EXPECT_EQ(dir.name().substr(0, 7), "InCache");
}

// --- factory -------------------------------------------------------------------

TEST(DirectoryFactory, BuildsEveryKind)
{
    for (DirectoryKind kind : kAllKinds) {
        auto dir = makeOrg(kind);
        ASSERT_NE(dir, nullptr) << directoryKindName(kind);
        test::accessDir(*dir, 1, 0, false);
        EXPECT_TRUE(dir->probe(1)) << directoryKindName(kind);
    }
}

TEST(DirectoryFactory, KindNamesAreDistinct)
{
    std::set<std::string> names;
    for (DirectoryKind kind : kAllKinds)
        names.insert(directoryKindName(kind));
    EXPECT_EQ(names.size(), std::size(kAllKinds));
}

} // namespace
} // namespace cdir
