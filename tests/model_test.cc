/**
 * @file
 * Tests for the analytical energy/area model: reference normalization,
 * per-organization scaling exponents (the Fig. 4/13 shapes), and the
 * paper's headline cross-organization comparisons.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "model/directory_model.hh"
#include "model/sram.hh"

namespace cdir {
namespace {

DirSystemParams
sharedL2At(std::size_t cores)
{
    DirSystemParams p;
    p.numCores = cores;
    p.cachesPerCore = 2;       // split I/D L1s
    p.framesPerCache = 1024;   // 64KB
    p.cacheAssoc = 2;
    p.cuckooProvisioning = 1.0; // §5.2 Shared-L2 selection
    p.cuckooWays = 4;
    return p;
}

DirSystemParams
privateL2At(std::size_t cores)
{
    DirSystemParams p;
    p.numCores = cores;
    p.cachesPerCore = 1;
    p.framesPerCache = 16384;  // 1MB
    p.cacheAssoc = 16;
    p.cuckooProvisioning = 1.5; // §5.2 Private-L2 selection
    p.cuckooWays = 3;
    return p;
}

// --- SRAM proxy -----------------------------------------------------------

TEST(Sram, EnergyGrowsWithBits)
{
    EXPECT_GT(sramAccessEnergy(1024, 200, 0), sramAccessEnergy(1024, 100, 0));
    EXPECT_GT(sramAccessEnergy(1024, 0, 200), sramAccessEnergy(1024, 0, 100));
}

TEST(Sram, WritesCostMoreThanReads)
{
    EXPECT_GT(sramAccessEnergy(64, 0, 100), sramAccessEnergy(64, 100, 0));
}

TEST(Sram, DecoderTermGrowsWithRows)
{
    EXPECT_GT(sramAccessEnergy(1 << 20, 100, 0),
              sramAccessEnergy(1 << 4, 100, 0));
}

TEST(Sram, ReferenceValuesAreSane)
{
    // 16 ways x 34 bits = 544 sensed bits plus decode.
    EXPECT_GT(l2TagLookupEnergy(), 544.0);
    EXPECT_LT(l2TagLookupEnergy(), 700.0);
    EXPECT_DOUBLE_EQ(l2DataAreaBits(), 8.0 * 1024 * 1024);
}

// --- model basics ------------------------------------------------------------

const OrgModel kAllOrgs[] = {
    OrgModel::DuplicateTag, OrgModel::Tagless,     OrgModel::SparseFull,
    OrgModel::InCache,      OrgModel::SparseCoarse, OrgModel::SparseHier,
    OrgModel::CuckooFull,   OrgModel::CuckooCoarse, OrgModel::CuckooHier,
};

class ModelBasics : public testing::TestWithParam<OrgModel>
{};

TEST_P(ModelBasics, PositiveFiniteCosts)
{
    for (std::size_t cores : {16, 64, 256, 1024}) {
        const auto cost = directoryCost(GetParam(), sharedL2At(cores));
        EXPECT_GT(cost.energyPerOp, 0.0);
        EXPECT_TRUE(std::isfinite(cost.energyPerOp));
        EXPECT_GT(cost.areaBitsPerCore, 0.0);
        EXPECT_TRUE(std::isfinite(cost.areaBitsPerCore));
        EXPECT_GT(cost.energyRelative, 0.0);
        EXPECT_GT(cost.areaRelative, 0.0);
    }
}

TEST_P(ModelBasics, NamesAreDistinctAndStable)
{
    EXPECT_FALSE(orgModelName(GetParam()).empty());
}

INSTANTIATE_TEST_SUITE_P(AllOrgs, ModelBasics, testing::ValuesIn(kAllOrgs),
                         [](const auto &info) {
                             auto n = orgModelName(info.param);
                             for (auto &c : n)
                                 if (!isalnum(static_cast<unsigned char>(c)))
                                     c = '_';
                             return n;
                         });

// --- Fig. 4/13 scaling shapes ---------------------------------------------------

double
growthExponent(OrgModel org, DirSystemParams (*at)(std::size_t),
               bool energy)
{
    // log-log slope of the per-core cost between 16 and 1024 cores.
    const auto lo = directoryCost(org, at(16));
    const auto hi = directoryCost(org, at(1024));
    const double ratio = energy ? hi.energyPerOp / lo.energyPerOp
                                : hi.areaBitsPerCore / lo.areaBitsPerCore;
    return std::log2(ratio) / std::log2(1024.0 / 16.0);
}

TEST(ModelScaling, DuplicateTagEnergyGrowsLinearlyPerCore)
{
    // §3.1: per-slice associativity grows with core count -> per-core
    // energy ~linear -> aggregate quadratic.
    const double e = growthExponent(OrgModel::DuplicateTag, sharedL2At,
                                    true);
    EXPECT_GT(e, 0.8);
    EXPECT_LT(e, 1.2);
}

TEST(ModelScaling, DuplicateTagAreaIsFlatPerCore)
{
    const double a = growthExponent(OrgModel::DuplicateTag, sharedL2At,
                                    false);
    EXPECT_LT(std::abs(a), 0.2);
}

TEST(ModelScaling, TaglessEnergySlopeMatchesDuplicateTag)
{
    // §3.3: "the slope of the energy dissipation line for the Tagless
    // directory is nearly identical to the Duplicate-Tag organization".
    const double tagless =
        growthExponent(OrgModel::Tagless, sharedL2At, true);
    const double duptag =
        growthExponent(OrgModel::DuplicateTag, sharedL2At, true);
    EXPECT_NEAR(tagless, duptag, 0.25);
}

TEST(ModelScaling, TaglessAreaIsFlatAndTiny)
{
    const double a = growthExponent(OrgModel::Tagless, sharedL2At, false);
    EXPECT_LT(std::abs(a), 0.2);
    EXPECT_LT(directoryCost(OrgModel::Tagless, sharedL2At(1024))
                  .areaRelative,
              0.10);
}

TEST(ModelScaling, SparseFullVectorGrowsLinearlyInBoth)
{
    EXPECT_GT(growthExponent(OrgModel::SparseFull, sharedL2At, true), 0.5);
    EXPECT_GT(growthExponent(OrgModel::SparseFull, sharedL2At, false),
              0.8);
}

TEST(ModelScaling, InCacheAreaGrowsLinearlyPerCore)
{
    EXPECT_GT(growthExponent(OrgModel::InCache, sharedL2At, false), 0.8);
}

TEST(ModelScaling, CoarseAndHierAreNearlyFlat)
{
    for (OrgModel org : {OrgModel::SparseCoarse, OrgModel::SparseHier,
                         OrgModel::CuckooCoarse, OrgModel::CuckooHier}) {
        EXPECT_LT(growthExponent(org, sharedL2At, true), 0.35)
            << orgModelName(org);
        EXPECT_LT(growthExponent(org, sharedL2At, false), 0.35)
            << orgModelName(org);
    }
}

// --- headline comparisons (§1, §5.6, §7) -----------------------------------------

TEST(ModelHeadlines, CuckooBeatsDuplicateTagEnergyAt16Cores)
{
    // "Even at 16 cores, the Cuckoo directory is up to 16x more
    // energy-efficient than the traditional Duplicate-Tag directory."
    const auto p = sharedL2At(16);
    const double dup =
        directoryCost(OrgModel::DuplicateTag, p).energyPerOp;
    const double cuckoo =
        directoryCost(OrgModel::CuckooFull, p).energyPerOp;
    EXPECT_GT(dup / cuckoo, 4.0);
}

TEST(ModelHeadlines, CuckooBeatsSparse8xAreaAt16Cores)
{
    // "...up to 6x more area-efficient than the Sparse organization."
    const auto p = sharedL2At(16);
    const double sparse =
        directoryCost(OrgModel::SparseCoarse, p).areaBitsPerCore;
    const double cuckoo =
        directoryCost(OrgModel::CuckooCoarse, p).areaBitsPerCore;
    EXPECT_GT(sparse / cuckoo, 4.0);
    EXPECT_LT(sparse / cuckoo, 10.0);
}

TEST(ModelHeadlines, CuckooBeats7xSparseAreaAt1024Cores)
{
    // "...more than 7x area-efficiency over the leading power-efficient
    // Sparse design at 1024 cores."
    const auto p = sharedL2At(1024);
    const double sparse =
        directoryCost(OrgModel::SparseHier, p).areaBitsPerCore;
    const double cuckoo =
        directoryCost(OrgModel::CuckooHier, p).areaBitsPerCore;
    EXPECT_GT(sparse / cuckoo, 5.0);
}

TEST(ModelHeadlines, CuckooBeatsTaglessEnergyAt1024Cores)
{
    // "...up to 80x energy-efficiency over the leading area-efficient
    // Tagless design" — our proxy preserves a large multi-x gap.
    const auto p = sharedL2At(1024);
    const double tagless =
        directoryCost(OrgModel::Tagless, p).energyPerOp;
    const double cuckoo =
        directoryCost(OrgModel::CuckooCoarse, p).energyPerOp;
    EXPECT_GT(tagless / cuckoo, 8.0);
}

TEST(ModelHeadlines, TaglessEnergyOvertakesSparseCoarseBeyond128Cores)
{
    // §5.6: Tagless is energy-cheap at low core counts but prohibitive
    // beyond ~128 cores.
    const double low16 =
        directoryCost(OrgModel::Tagless, sharedL2At(16)).energyPerOp;
    const double sparse16 =
        directoryCost(OrgModel::SparseFull, sharedL2At(16)).energyPerOp;
    EXPECT_LT(low16, sparse16);
    const double high =
        directoryCost(OrgModel::Tagless, sharedL2At(512)).energyPerOp;
    const double sparse_high =
        directoryCost(OrgModel::SparseCoarse, sharedL2At(512)).energyPerOp;
    EXPECT_GT(high, sparse_high);
}

TEST(ModelHeadlines, CuckooShared1024AreaUnder3Percent)
{
    // §5.6: "...bringing the area of the directory storage under 3% of
    // the L2 area for the Shared-L2 configuration with 1024 cores."
    const auto cost =
        directoryCost(OrgModel::CuckooCoarse, sharedL2At(1024));
    EXPECT_LT(cost.areaRelative, 0.03);
}

TEST(ModelHeadlines, CuckooPrivate1024AreaNear30Percent)
{
    // §5.6 reports "under 30%"; our proxy lands at ~30.5% because it
    // provisions one fully tag-replicated secondary leaf per entry —
    // see EXPERIMENTS.md for the comparison.
    const auto cost =
        directoryCost(OrgModel::CuckooHier, privateL2At(1024));
    EXPECT_LT(cost.areaRelative, 0.35);
    EXPECT_GT(cost.areaRelative, 0.20);
}

TEST(ModelHeadlines, InCachePracticalOnlyAtModerateCoreCounts)
{
    // §5.6: in-cache loses its advantage beyond ~128 cores as vector
    // storage dominates.
    const double at16 =
        directoryCost(OrgModel::InCache, sharedL2At(16)).areaRelative;
    const double at1024 =
        directoryCost(OrgModel::InCache, sharedL2At(1024)).areaRelative;
    EXPECT_LT(at16, 0.10);
    EXPECT_GT(at1024, 0.5);
}

TEST(ModelMix, EventMixIsNormalized)
{
    const EventMix mix;
    EXPECT_NEAR(mix.insert + mix.addSharer + mix.removeSharer +
                    mix.removeTag + mix.invalidateAll,
                1.0, 1e-9);
}

TEST(ModelMix, CustomMixShiftsEnergy)
{
    // An insert-only mix must cost more than a removeTag-only mix for
    // the Cuckoo organization (inserts write whole entries).
    EventMix inserts{1.0, 0.0, 0.0, 0.0, 0.0};
    EventMix removes{0.0, 0.0, 0.0, 1.0, 0.0};
    const auto p = sharedL2At(16);
    EXPECT_GT(directoryCost(OrgModel::CuckooFull, p, inserts).energyPerOp,
              directoryCost(OrgModel::CuckooFull, p, removes).energyPerOp);
}

} // namespace
} // namespace cdir
