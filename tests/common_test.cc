/**
 * @file
 * Unit tests for src/common: bit utilities, RNG, dynamic bitset, stats.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/bit_util.hh"
#include "common/bitset.hh"
#include "common/rng.hh"
#include "common/stats.hh"

namespace cdir {
namespace {

// --- bit_util ------------------------------------------------------------

TEST(BitUtil, IsPowerOfTwoBasics)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ull << 63));
    EXPECT_FALSE(isPowerOfTwo((1ull << 63) + 1));
}

TEST(BitUtil, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(1023), 9u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(~0ull), 63u);
}

TEST(BitUtil, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(5), 3u);
    EXPECT_EQ(ceilLog2(1 << 20), 20u);
    EXPECT_EQ(ceilLog2((1 << 20) + 1), 21u);
}

TEST(BitUtil, BitsToName)
{
    EXPECT_EQ(bitsToName(1), 1u);
    EXPECT_EQ(bitsToName(2), 1u);
    EXPECT_EQ(bitsToName(3), 2u);
    EXPECT_EQ(bitsToName(16), 4u);
    EXPECT_EQ(bitsToName(17), 5u);
    EXPECT_EQ(bitsToName(1024), 10u);
}

TEST(BitUtil, LowMask)
{
    EXPECT_EQ(lowMask(0), 0ull);
    EXPECT_EQ(lowMask(1), 1ull);
    EXPECT_EQ(lowMask(8), 0xffull);
    EXPECT_EQ(lowMask(64), ~0ull);
}

TEST(BitUtil, ExtractBits)
{
    EXPECT_EQ(extractBits(0xdeadbeefull, 0, 8), 0xefull);
    EXPECT_EQ(extractBits(0xdeadbeefull, 8, 8), 0xbeull);
    EXPECT_EQ(extractBits(0xdeadbeefull, 16, 16), 0xdeadull);
    EXPECT_EQ(extractBits(~0ull, 60, 4), 0xfull);
}

TEST(BitUtil, RotateLeftWithinWidth)
{
    EXPECT_EQ(rotateLeft(0b0001, 1, 4), 0b0010ull);
    EXPECT_EQ(rotateLeft(0b1000, 1, 4), 0b0001ull);
    EXPECT_EQ(rotateLeft(0b1010, 2, 4), 0b1010ull);
    EXPECT_EQ(rotateLeft(0xff, 4, 8), 0xffull);
    EXPECT_EQ(rotateLeft(0x1, 0, 8), 0x1ull);
    // Amount wraps around the width.
    EXPECT_EQ(rotateLeft(0x3, 8, 8), 0x3ull);
}

// --- Rng -------------------------------------------------------------------

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.below(37);
        EXPECT_LT(v, 37u);
    }
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    double sum = 0.0;
    for (int i = 0; i < 100000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(5);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        if (rng.chance(0.25))
            ++hits;
    EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

// --- DynamicBitset -----------------------------------------------------------

TEST(DynamicBitset, StartsEmpty)
{
    DynamicBitset bs(100);
    EXPECT_EQ(bs.size(), 100u);
    EXPECT_EQ(bs.count(), 0u);
    EXPECT_TRUE(bs.none());
    EXPECT_FALSE(bs.any());
}

TEST(DynamicBitset, SetResetTest)
{
    DynamicBitset bs(70);
    bs.set(0);
    bs.set(63);
    bs.set(64);
    bs.set(69);
    EXPECT_TRUE(bs.test(0));
    EXPECT_TRUE(bs.test(63));
    EXPECT_TRUE(bs.test(64));
    EXPECT_TRUE(bs.test(69));
    EXPECT_FALSE(bs.test(1));
    EXPECT_EQ(bs.count(), 4u);
    bs.reset(63);
    EXPECT_FALSE(bs.test(63));
    EXPECT_EQ(bs.count(), 3u);
}

TEST(DynamicBitset, ClearResetsEverything)
{
    DynamicBitset bs(130);
    for (std::size_t i = 0; i < 130; i += 3)
        bs.set(i);
    EXPECT_GT(bs.count(), 0u);
    bs.clear();
    EXPECT_EQ(bs.count(), 0u);
    EXPECT_TRUE(bs.none());
}

TEST(DynamicBitset, FindFirstAndNext)
{
    DynamicBitset bs(200);
    bs.set(5);
    bs.set(64);
    bs.set(199);
    EXPECT_EQ(bs.findFirst(), 5u);
    EXPECT_EQ(bs.findNext(5), 64u);
    EXPECT_EQ(bs.findNext(64), 199u);
    EXPECT_EQ(bs.findNext(199), 200u);
}

TEST(DynamicBitset, FindFirstOnEmpty)
{
    DynamicBitset bs(64);
    EXPECT_EQ(bs.findFirst(), 64u);
}

TEST(DynamicBitset, IterationVisitsAllSetBits)
{
    DynamicBitset bs(300);
    std::set<std::size_t> expect;
    for (std::size_t i = 7; i < 300; i += 13) {
        bs.set(i);
        expect.insert(i);
    }
    std::set<std::size_t> got;
    for (std::size_t i = bs.findFirst(); i < bs.size(); i = bs.findNext(i))
        got.insert(i);
    EXPECT_EQ(got, expect);
}

TEST(DynamicBitset, UnionAndIntersection)
{
    DynamicBitset a(100), b(100);
    a.set(1);
    a.set(50);
    b.set(50);
    b.set(99);
    DynamicBitset u = a;
    u |= b;
    EXPECT_EQ(u.count(), 3u);
    EXPECT_TRUE(u.test(1) && u.test(50) && u.test(99));
    DynamicBitset i = a;
    i &= b;
    EXPECT_EQ(i.count(), 1u);
    EXPECT_TRUE(i.test(50));
}

TEST(DynamicBitset, EqualityIncludesSize)
{
    DynamicBitset a(10), b(10), c(11);
    a.set(3);
    b.set(3);
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a == c);
    b.set(4);
    EXPECT_FALSE(a == b);
}

TEST(DynamicBitset, ZeroSizedIsSane)
{
    DynamicBitset bs(0);
    EXPECT_EQ(bs.size(), 0u);
    EXPECT_TRUE(bs.none());
    EXPECT_EQ(bs.findFirst(), 0u);
}

// --- stats -------------------------------------------------------------------

TEST(RunningMean, EmptyIsZero)
{
    RunningMean m;
    EXPECT_EQ(m.count(), 0u);
    EXPECT_EQ(m.mean(), 0.0);
}

TEST(RunningMean, MeanOfSamples)
{
    RunningMean m;
    m.add(1.0);
    m.add(2.0);
    m.add(3.0);
    EXPECT_EQ(m.count(), 3u);
    EXPECT_DOUBLE_EQ(m.mean(), 2.0);
    EXPECT_DOUBLE_EQ(m.sum(), 6.0);
}

TEST(RunningMean, AddWeightedMatchesRepeatedAdd)
{
    RunningMean a, b;
    for (int i = 0; i < 10; ++i)
        a.add(4.0);
    b.addWeighted(4.0, 10);
    EXPECT_EQ(a.count(), b.count());
    EXPECT_DOUBLE_EQ(a.mean(), b.mean());
}

TEST(RunningMean, ResetDiscards)
{
    RunningMean m;
    m.add(5);
    m.reset();
    EXPECT_EQ(m.count(), 0u);
    EXPECT_EQ(m.mean(), 0.0);
}

TEST(Histogram, RecordsBuckets)
{
    Histogram h(32);
    h.add(0);
    h.add(1);
    h.add(1);
    h.add(32);
    EXPECT_EQ(h.at(0), 1u);
    EXPECT_EQ(h.at(1), 2u);
    EXPECT_EQ(h.at(32), 1u);
    EXPECT_EQ(h.count(), 4u);
}

TEST(Histogram, ClampsOverflowToTopBucket)
{
    Histogram h(32);
    h.add(33);
    h.add(1000);
    EXPECT_EQ(h.at(32), 2u);
}

TEST(Histogram, FractionsSumToOne)
{
    Histogram h(8);
    for (std::uint64_t v = 0; v <= 8; ++v)
        h.add(v);
    double total = 0.0;
    for (std::size_t v = 0; v <= 8; ++v)
        total += h.fraction(v);
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, MeanMatchesSamples)
{
    Histogram h(32);
    h.add(2);
    h.add(4);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(Histogram, MergeAccumulates)
{
    Histogram a(32), b(32);
    a.add(1);
    b.add(1);
    b.add(5);
    a.merge(b);
    EXPECT_EQ(a.at(1), 2u);
    EXPECT_EQ(a.at(5), 1u);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Histogram, MergeClampsWiderSource)
{
    Histogram narrow(4), wide(32);
    wide.add(20);
    narrow.merge(wide);
    EXPECT_EQ(narrow.at(4), 1u);
}

TEST(Histogram, ResetClears)
{
    Histogram h(8);
    h.add(3);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.at(3), 0u);
}

} // namespace
} // namespace cdir
