/**
 * @file
 * Tests for the paper's §6 extensions implemented in this repository:
 * the bucketized Cuckoo table (Panigrahy [30]), the overflow stash
 * (Kirsch et al. [22]), and the Elbow directory (Spjuth et al.
 * [37,38]) — including the comparative claims the paper makes about
 * them.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "common/stats.hh"
#include "directory/cuckoo_directory.hh"
#include "directory/cuckoo_table.hh"
#include "directory/elbow_directory.hh"

#include "dir_test_util.hh"

namespace cdir {
namespace {

// --- bucketized cuckoo table ---------------------------------------------------

TEST(BucketizedCuckoo, CapacityScalesWithBucketSlots)
{
    auto family = makeHashFamily(HashKind::Strong, 2, 64, 1);
    CuckooTable<int> table(*family, 32, 4);
    EXPECT_EQ(table.capacity(), 2u * 64u * 4u);
    EXPECT_EQ(table.slotsPerBucket(), 4u);
}

TEST(BucketizedCuckoo, HoldsMultipleCollidingTagsPerBucket)
{
    // With 4-slot buckets, four tags hashing to the same (way, set)
    // coexist without displacement.
    auto family = makeHashFamily(HashKind::Modulo, 2, 16, 1);
    CuckooTable<int> table(*family, 32, 4);
    for (Tag t = 0; t < 4; ++t) {
        auto res = table.insert(t * 16, 1); // same modulo index
        EXPECT_EQ(res.attempts, 1u);
        EXPECT_FALSE(res.discarded);
    }
    for (Tag t = 0; t < 4; ++t)
        EXPECT_NE(table.find(t * 16), nullptr);
}

TEST(BucketizedCuckoo, FindAndEraseAcrossBucketSlots)
{
    auto family = makeHashFamily(HashKind::Strong, 3, 64, 2);
    CuckooTable<int> table(*family, 32, 2);
    std::set<Tag> live;
    Rng rng(3);
    while (table.occupancy() < 0.6) {
        const Tag tag = rng.next() >> 4;
        if (table.find(tag))
            continue;
        if (!table.insert(tag, 7).discarded)
            live.insert(tag);
    }
    for (Tag t : live)
        ASSERT_NE(table.find(t), nullptr);
    for (Tag t : live)
        ASSERT_TRUE(table.erase(t).has_value());
    EXPECT_EQ(table.size(), 0u);
}

TEST(BucketizedCuckoo, ReachesHigherOccupancyThanFlatTwoAry)
{
    // §6: multiple elements per bucket "may offer additional
    // improvement in the behavior ... at high directory occupancy".
    auto run = [](unsigned bucket_slots, std::size_t sets) {
        auto family = makeHashFamily(HashKind::Strong, 2, sets, 5);
        CuckooTable<char> table(*family, 32, bucket_slots);
        Rng rng(7);
        std::uint64_t failures = 0, inserts = 0;
        // Push to 70% occupancy or until failures dominate.
        for (int i = 0; i < 60000 && table.occupancy() < 0.70; ++i) {
            const Tag tag = rng.next() >> 4;
            if (table.find(tag))
                continue;
            ++inserts;
            if (table.insert(tag, 0).discarded)
                ++failures;
        }
        return std::pair<double, double>(
            table.occupancy(), double(failures) / double(inserts));
    };
    // Equal capacity: flat 2x4096 vs bucketized 2x1024x4.
    const auto flat = run(1, 4096);
    const auto bucketized = run(4, 1024);
    EXPECT_GT(bucketized.first, flat.first - 0.01);
    EXPECT_LT(bucketized.second, flat.second);
}

// --- stash ------------------------------------------------------------------------

TEST(StashCuckoo, AbsorbsOverflowInsteadOfInvalidating)
{
    // Tiny 2-ary table with a stash: overflow entries park in the stash
    // and remain findable; no forced evictions until the stash fills.
    CuckooDirectory dir(8, 2, 4, SharerFormat::FullVector,
                        HashKind::Strong, 4, 3, 1, 16);
    Rng rng(9);
    std::set<Tag> inserted;
    while (dir.stashAbsorbed() < 4 && inserted.size() < 60) {
        const Tag tag = rng.next() >> 3;
        if (dir.probe(tag))
            continue;
        auto res = test::accessDir(dir, tag, 0, false);
        ASSERT_FALSE(res.insertDiscarded);
        inserted.insert(tag);
        if (inserted.size() > 24)
            break; // table (8) + stash (16) bound
    }
    EXPECT_GT(dir.stashAbsorbed(), 0u);
    EXPECT_EQ(dir.stats().forcedEvictions, 0u);
    for (Tag t : inserted)
        ASSERT_TRUE(dir.probe(t)) << "tag " << t;
}

TEST(StashCuckoo, FullStashFallsBackToDiscard)
{
    CuckooDirectory dir(8, 2, 4, SharerFormat::FullVector,
                        HashKind::Strong, 4, 3, 1, 2);
    Rng rng(11);
    int attempts = 0;
    while (dir.stats().forcedEvictions == 0 && attempts < 500) {
        const Tag tag = rng.next() >> 3;
        if (!dir.probe(tag))
            test::accessDir(dir, tag, 0, false);
        ++attempts;
    }
    EXPECT_GT(dir.stats().forcedEvictions, 0u);
    EXPECT_LE(dir.stashSize(), 2u);
}

TEST(StashCuckoo, StashEntriesUpdateAndRetire)
{
    CuckooDirectory dir(8, 2, 4, SharerFormat::FullVector,
                        HashKind::Strong, 4, 3, 1, 8);
    // Fill until something lands in the stash, remembering every tag
    // that stayed tracked.
    Rng rng(13);
    std::vector<Tag> tags;
    while (dir.stashSize() == 0) {
        const Tag tag = rng.next() >> 3;
        if (!dir.probe(tag)) {
            test::accessDir(dir, tag, 2, false);
            tags.push_back(tag);
        }
    }
    std::erase_if(tags, [&](Tag t) { return !dir.probe(t); });
    const std::size_t entries_before = dir.validEntries();
    // Every tracked tag can gain sharers, wherever it lives; retiring
    // the last sharer frees the entry.
    ASSERT_FALSE(tags.empty());
    for (Tag t : tags) {
        auto res = test::accessDir(dir, t, 5, false); // add sharer
        EXPECT_TRUE(res.hit);
    }
    EXPECT_EQ(dir.validEntries(), entries_before);
    for (Tag t : tags) {
        dir.removeSharer(t, 2);
        dir.removeSharer(t, 5);
    }
    EXPECT_EQ(dir.validEntries(), 0u);
}

TEST(StashCuckoo, DrainsBackIntoTableOnFrees)
{
    CuckooDirectory dir(8, 2, 4, SharerFormat::FullVector,
                        HashKind::Strong, 4, 3, 1, 8);
    Rng rng(17);
    std::vector<Tag> live;
    while (dir.stashSize() < 2) {
        const Tag tag = rng.next() >> 3;
        if (dir.probe(tag))
            continue;
        test::accessDir(dir, tag, 0, false);
        live.push_back(tag);
    }
    const std::size_t stash_before = dir.stashSize();
    // Free a few table entries: the stash should drain opportunistically.
    std::size_t freed = 0;
    for (Tag t : live) {
        if (freed >= 4)
            break;
        dir.removeSharer(t, 0);
        ++freed;
    }
    EXPECT_LT(dir.stashSize(), stash_before);
}

// --- Elbow directory ------------------------------------------------------------

TEST(Elbow, SingleRelocationResolvesSimpleConflict)
{
    ElbowDirectory dir(8, 2, 8, SharerFormat::FullVector);
    Rng rng(19);
    // Load until the first relocation happens; no eviction may precede
    // it unless no one-hop move existed.
    while (dir.relocations() == 0 && dir.validEntries() < 14) {
        const Tag tag = rng.next() >> 3;
        if (!dir.probe(tag))
            test::accessDir(dir, tag, 0, false);
    }
    EXPECT_GT(dir.relocations(), 0u);
}

TEST(Elbow, ProtocolSemanticsMatchOtherOrganizations)
{
    ElbowDirectory dir(8, 4, 64, SharerFormat::FullVector);
    test::accessDir(dir, 0x10, 1, false);
    test::accessDir(dir, 0x10, 2, false);
    auto res = test::accessDir(dir, 0x10, 1, true);
    ASSERT_TRUE(res.hadSharerInvalidations);
    EXPECT_TRUE(res.sharerInvalidations.test(2));
    EXPECT_FALSE(res.sharerInvalidations.test(1));
    dir.removeSharer(0x10, 1);
    EXPECT_FALSE(dir.probe(0x10));
}

TEST(Elbow, MoreForcedInvalidationsThanCuckooAtEqualSize)
{
    // §6: the Elbow cache "experiences more forced invalidations than
    // the Cuckoo directory" because it is limited to one displacement.
    const unsigned ways = 4;
    const std::size_t sets = 256;
    ElbowDirectory elbow(8, ways, sets, SharerFormat::FullVector);
    CuckooDirectory cuckoo(8, ways, sets, SharerFormat::FullVector);
    Rng rng(23);
    std::vector<Tag> live;
    const std::size_t target = ways * sets * 3 / 4; // 75% occupancy churn
    for (int i = 0; i < 120000; ++i) {
        if (live.size() >= target) {
            const std::size_t k = rng.below(live.size());
            elbow.removeSharer(live[k], 0);
            cuckoo.removeSharer(live[k], 0);
            live[k] = live.back();
            live.pop_back();
        } else {
            const Tag tag = rng.next() >> 4;
            if (elbow.probe(tag) || cuckoo.probe(tag))
                continue;
            test::accessDir(elbow, tag, 0, false);
            test::accessDir(cuckoo, tag, 0, false);
            live.push_back(tag);
        }
    }
    EXPECT_GT(elbow.stats().forcedEvictions,
              cuckoo.stats().forcedEvictions);
}

TEST(Elbow, FactoryBuildsIt)
{
    DirectoryParams p;
    p.kind = DirectoryKind::Elbow;
    p.numCaches = 16;
    p.ways = 4;
    p.sets = 64;
    auto dir = makeDirectory(p);
    ASSERT_NE(dir, nullptr);
    EXPECT_EQ(dir->name().substr(0, 5), "Elbow");
    EXPECT_EQ(directoryKindName(DirectoryKind::Elbow), "Elbow");
}

TEST(BucketizedCuckoo, DirectoryNameReflectsExtensions)
{
    CuckooDirectory dir(8, 3, 64, SharerFormat::FullVector,
                        HashKind::Skewing, 32, 1, 2, 8);
    EXPECT_NE(dir.name().find("b2"), std::string::npos);
    EXPECT_NE(dir.name().find("stash8"), std::string::npos);
}

} // namespace
} // namespace cdir
