/**
 * @file
 * Tests for the phased scenario subsystem and interval telemetry:
 *
 *  - preset registry and ScenarioWorkload semantics (determinism,
 *    periodic looping, thread migration, core off-lining, the
 *    producer-consumer burst overlay);
 *  - scenario text-format parsing and its rejection cases (unknown
 *    directives/events, bad core ids, overlapping phases, gaps — all
 *    carrying "name:line:" context);
 *  - record -> replay of a ScenarioWorkload through the trace pipeline
 *    (bit-identical system state);
 *  - the acceptance pin: a scenario sweep's time series is
 *    bit-identical across --jobs and --shards settings;
 *  - IntervalStats: window sums equal the end-of-run aggregates, and
 *    merge() of per-slice-group partial series is exact (the PR 4
 *    counter-merge discipline extended to time series).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/sweep.hh"
#include "workload/scenario.hh"

namespace cdir {
namespace {

std::string
tempPath(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

/** All-private profile: every access hits the issuing thread's region. */
WorkloadParams
privateOnlyProfile(std::uint64_t seed = 11)
{
    WorkloadParams wl;
    wl.seed = seed;
    wl.instructionFraction = 0.0;
    wl.sharedDataFraction = 0.0;
    wl.codeBlocks = 8;
    wl.sharedBlocks = 8;
    wl.privateBlocksPerCore = 64;
    return wl;
}

/** Two-phase scenario on @p cores cores with @p events in phase 2. */
Scenario
twoPhase(std::size_t cores, std::vector<ScenarioEvent> events,
         std::uint64_t len = 2000, bool loop = false)
{
    Scenario sc;
    sc.name = "two-phase";
    sc.numCores = cores;
    sc.loop = loop;
    ScenarioPhase a;
    a.label = "a";
    a.accesses = len;
    a.workload = privateOnlyProfile(11);
    sc.phases.push_back(a);
    ScenarioPhase b;
    b.label = "b";
    b.startAccess = len;
    b.accesses = len;
    b.workload = privateOnlyProfile(11);
    b.events = std::move(events);
    sc.phases.push_back(b);
    return sc;
}

void
expectSameAccess(const MemAccess &a, const MemAccess &b, std::size_t i)
{
    EXPECT_EQ(a.core, b.core) << "record " << i;
    EXPECT_EQ(a.addr, b.addr) << "record " << i;
    EXPECT_EQ(a.write, b.write) << "record " << i;
    EXPECT_EQ(a.instruction, b.instruction) << "record " << i;
}

/**
 * Short-phase scenario file exercising every event kind: the
 * sweep/runExperiment-level determinism pins must cross phase
 * transitions (migrations, off/on-lining, a burst overlay, and the
 * loop wrap), not idle inside a preset's event-free first phase.
 */
std::string
eventfulScenarioFile()
{
    static const std::string path =
        tempPath("cdir_scenario_eventful.scn");
    std::ofstream out(path);
    out << "scenario eventful\n"
           "cores 4\n"
           "phase steady 3000\n"
           "  preset DB2\n"
           "phase storm 3000\n"
           "  preset DB2\n"
           "  set seed=77\n"
           "  migrate 0 2\n"
           "  migrate 1 3\n"
           "  offline 1\n"
           "  burst fraction=0.3 ring=64 producer=2\n"
           "phase recover 3000\n"
           "  preset DB2\n"
           "  online 1\n"
           "  migrate 0 0\n"
           "  migrate 1 1\n";
    return path;
}

/** Tiny under-provisioned CMP the sweep tests run on. */
CmpConfig
tinyConfig(const std::string &organization)
{
    CmpConfig cfg;
    cfg.numCores = 4;
    cfg.numSlices = 4;
    cfg.privateCache = CacheConfig{32, 2};
    cfg.directory.organization = organization;
    cfg.directory.ways = 4;
    cfg.directory.sets = 8;
    cfg.directory.trackedCacheAssoc = cfg.privateCache.assoc;
    return cfg;
}

// --- presets -----------------------------------------------------------------

TEST(ScenarioPresets, AtLeastFivePresetsAllRunnable)
{
    const auto &names = scenarioPresetNames();
    EXPECT_GE(names.size(), 5u);
    for (const std::string &name : names) {
        const Scenario sc = scenarioPreset(name, 8, 500);
        EXPECT_EQ(sc.name, name);
        ScenarioWorkload wl(sc);
        for (int i = 0; i < 4000; ++i) {
            ASSERT_FALSE(wl.exhausted()) << name;
            const MemAccess a = wl.next();
            ASSERT_LT(a.core, 8u) << name;
        }
    }
}

TEST(ScenarioPresets, UnknownNameThrows)
{
    EXPECT_THROW(scenarioPreset("no-such-scenario", 8),
                 std::invalid_argument);
    EXPECT_THROW(resolveScenario("no-such-file.scn", 8),
                 std::runtime_error);
}

TEST(ScenarioPresets, PresetsWorkOnOneCore)
{
    // Degenerate CMP: events must not strand or offline the only core.
    for (const std::string &name : scenarioPresetNames()) {
        const Scenario sc = scenarioPreset(name, 1, 200);
        ScenarioWorkload wl(sc);
        for (int i = 0; i < 1000; ++i)
            EXPECT_EQ(wl.next().core, 0u) << name;
    }
}

// --- ScenarioWorkload semantics ----------------------------------------------

TEST(ScenarioWorkload, TwoInstancesYieldIdenticalStreams)
{
    const Scenario sc = scenarioPreset("migration-storm", 4, 1000);
    ScenarioWorkload a(sc), b(sc);
    for (std::size_t i = 0; i < 20000; ++i)
        expectSameAccess(a.next(), b.next(), i);
}

TEST(ScenarioWorkload, LoopingScheduleIsExactlyPeriodic)
{
    Scenario sc = twoPhase(
        4, {{ScenarioEvent::Kind::Migrate, 0, 2}}, 1000, /*loop=*/true);
    const std::uint64_t period = sc.totalAccesses();
    ScenarioWorkload wl(sc);
    std::vector<MemAccess> first;
    for (std::uint64_t i = 0; i < period; ++i)
        first.push_back(wl.next());
    for (std::uint64_t i = 0; i < period; ++i)
        expectSameAccess(first[i], wl.next(), i);
}

TEST(ScenarioWorkload, NonLoopingScheduleExhausts)
{
    const Scenario sc = twoPhase(2, {}, 500, /*loop=*/false);
    ScenarioWorkload wl(sc);
    std::uint64_t emitted = 0;
    while (!wl.exhausted()) {
        wl.next();
        ++emitted;
    }
    EXPECT_EQ(emitted, sc.totalAccesses());
}

TEST(ScenarioWorkload, ShortTraceSegmentEndsTheScheduleCleanly)
{
    // Regression: a trace segment running dry inside the final phase of
    // a non-looping scenario must flip exhausted() — never fabricate a
    // zero access to satisfy an in-flight next().
    const std::string path = tempPath("cdir_scenario_segment.trace");
    const std::uint64_t records = 37;
    {
        std::ofstream out(path);
        for (std::uint64_t i = 0; i < records; ++i)
            out << (i % 2) << " " << std::hex << (0x100 + i) << std::dec
                << " r\n";
    }
    Scenario sc;
    sc.numCores = 2;
    sc.loop = false;
    ScenarioPhase phase;
    phase.label = "segment";
    phase.accesses = 1000; // longer than the trace
    phase.workload.tracePath = path;
    sc.phases.push_back(phase);

    ScenarioWorkload wl(sc);
    std::uint64_t emitted = 0;
    while (!wl.exhausted()) {
        const MemAccess a = wl.next();
        EXPECT_EQ(a.addr, 0x100 + emitted);
        ++emitted;
    }
    EXPECT_EQ(emitted, records);
    std::filesystem::remove(path);
}

TEST(ScenarioWorkload, DryTraceSegmentEndsABurstPhaseToo)
{
    // The segment bounds the phase even when the burst overlay could
    // keep emitting: a dry trace must never leave a phase running on
    // pure burst traffic to its declared length.
    const std::string path = tempPath("cdir_scenario_burst_seg.trace");
    const std::uint64_t records = 30;
    {
        std::ofstream out(path);
        for (std::uint64_t i = 0; i < records; ++i)
            out << (i % 2) << " " << std::hex << (0x200 + i) << std::dec
                << " r\n";
    }
    Scenario sc;
    sc.numCores = 4;
    sc.loop = false;
    ScenarioPhase phase;
    phase.label = "burst-segment";
    phase.accesses = 10'000; // far longer than the segment
    phase.workload.tracePath = path;
    phase.burst.fraction = 0.5;
    phase.burst.ringBlocks = 8;
    phase.burst.producer = 0;
    sc.phases.push_back(phase);

    ScenarioWorkload wl(sc);
    std::uint64_t emitted = 0, base = 0;
    while (!wl.exhausted()) {
        if (wl.next().addr < (BlockAddr{1} << 52))
            ++base;
        ++emitted;
    }
    EXPECT_EQ(base, records);       // every segment record delivered
    EXPECT_LT(emitted, 4 * records); // ~2x with fraction 0.5, never 10k
    std::filesystem::remove(path);
}

// --- windowed trace segments (offset / cursor) -------------------------------

/** Write @p records two-core text-trace records at addr 0x100 + i. */
std::string
writeSegmentTrace(const char *name, std::uint64_t records)
{
    const std::string path = tempPath(name);
    std::ofstream out(path);
    for (std::uint64_t i = 0; i < records; ++i)
        out << (i % 2) << " " << std::hex << (0x100 + i) << std::dec
            << " r\n";
    return path;
}

/** One-phase scenario replaying @p path with the given windowing. */
Scenario
segmentScenario(const std::string &path, std::uint64_t accesses,
                std::uint64_t offset, bool cursor)
{
    Scenario sc;
    sc.name = "windowed";
    sc.numCores = 2;
    sc.loop = false;
    ScenarioPhase phase;
    phase.label = "window";
    phase.accesses = accesses;
    phase.workload.tracePath = path;
    phase.traceOffset = offset;
    phase.traceCursor = cursor;
    sc.phases.push_back(phase);
    return sc;
}

TEST(ScenarioWindowedTrace, OffsetSkipsLeadingRecords)
{
    const std::string path =
        writeSegmentTrace("cdir_scenario_offset.trace", 40);
    ScenarioWorkload wl(
        segmentScenario(path, /*accesses=*/30, /*offset=*/10, false));
    for (std::uint64_t i = 0; i < 30; ++i) {
        ASSERT_FALSE(wl.exhausted());
        EXPECT_EQ(wl.next().addr, 0x100 + 10 + i) << "record " << i;
    }
    // Exactly the declared window: the schedule ends cleanly.
    EXPECT_TRUE(wl.exhausted());
    std::filesystem::remove(path);
}

TEST(ScenarioWindowedTrace, OffsetPastTheEndThrows)
{
    const std::string path =
        writeSegmentTrace("cdir_scenario_offpast.trace", 30);
    try {
        ScenarioWorkload wl(
            segmentScenario(path, /*accesses=*/10, /*offset=*/50, false));
        FAIL() << "offset past the end accepted";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("past the end"),
                  std::string::npos)
            << e.what();
    }
    std::filesystem::remove(path);
}

TEST(ScenarioWindowedTrace, DryWindowedSegmentThrowsInsteadOfShifting)
{
    // A *plain* short segment ends its phase early (pinned above); a
    // windowed one running dry must fail loudly — ending early would
    // silently shift the declared schedule the offset promised.
    const std::string path =
        writeSegmentTrace("cdir_scenario_dry.trace", 30);
    ScenarioWorkload wl(
        segmentScenario(path, /*accesses=*/40, /*offset=*/10, false));
    std::uint64_t emitted = 0;
    std::vector<BlockAddr> delivered;
    try {
        while (!wl.exhausted()) {
            delivered.push_back(wl.next().addr);
            ++emitted;
        }
        FAIL() << "dry windowed segment ended the phase silently";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("ran dry"),
                  std::string::npos)
            << e.what();
    }
    // All 20 windowed records (30 - offset 10) are delivered before the
    // failure: the one-record lookahead *buffers* the dry-out error it
    // discovers while the final record is still in flight, exhausted()
    // stays false while the error is pending, and the following next()
    // call throws. Losing the last record to the lookahead was a bug.
    EXPECT_EQ(emitted, 20u);
    ASSERT_EQ(delivered.size(), 20u);
    for (std::uint64_t i = 0; i < 20; ++i)
        EXPECT_EQ(delivered[i], 0x100 + 10 + i) << "record " << i;
    std::filesystem::remove(path);
}

TEST(ScenarioWindowedTrace, DryOutErrorIsDeferredNotSwallowed)
{
    // Regression: the deferred error must not make the stream look
    // cleanly exhausted — a driver that politely checks exhausted()
    // before every next() still has to hit the throw.
    const std::string path =
        writeSegmentTrace("cdir_scenario_dry_defer.trace", 12);
    ScenarioWorkload wl(
        segmentScenario(path, /*accesses=*/20, /*offset=*/4, /*cursor=*/false));
    for (std::uint64_t i = 0; i < 8; ++i) {
        ASSERT_FALSE(wl.exhausted()) << "record " << i;
        EXPECT_EQ(wl.next().addr, 0x100 + 4 + i) << "record " << i;
    }
    // Every record of the window is out; the pending error keeps the
    // stream alive so the failure cannot be skipped...
    EXPECT_FALSE(wl.exhausted());
    EXPECT_THROW(wl.next(), std::runtime_error);
    // ...and stays pending: a retry throws again rather than reporting
    // a clean end.
    EXPECT_FALSE(wl.exhausted());
    EXPECT_THROW(wl.next(), std::runtime_error);
    std::filesystem::remove(path);
}

TEST(ScenarioWindowedTrace, CursorAdvancesTheWindowAcrossLoopPasses)
{
    // Looping two-phase schedule: a 20-access cursor segment plus a
    // synthetic phase. Each pass's segment window must continue where
    // the previous pass stopped (the cursor reader survives the loop
    // wrap), until the trace runs dry — which then fails loudly.
    const std::string path =
        writeSegmentTrace("cdir_scenario_cursor.trace", 100);
    Scenario sc = segmentScenario(path, 20, /*offset=*/0, /*cursor=*/true);
    sc.loop = true;
    ScenarioPhase synth;
    synth.label = "synth";
    synth.startAccess = 20;
    synth.accesses = 20;
    synth.workload = privateOnlyProfile();
    sc.phases.push_back(synth);

    ScenarioWorkload wl(sc);
    std::vector<BlockAddr> segment_addrs;
    try {
        for (;;) {
            const MemAccess a = wl.next();
            if (a.addr >= 0x100 && a.addr < 0x100 + 100)
                segment_addrs.push_back(a.addr);
        }
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("ran dry"),
                  std::string::npos)
            << e.what();
    }
    // Five passes of 20 records each, strictly consecutive across the
    // wraps: the whole 100-record trace delivered exactly once.
    ASSERT_EQ(segment_addrs.size(), 100u);
    for (std::uint64_t i = 0; i < 100; ++i)
        EXPECT_EQ(segment_addrs[i], 0x100 + i) << "record " << i;
    std::filesystem::remove(path);
}

TEST(ScenarioWindowedTrace, CursorAppliesTheOffsetOnceOnly)
{
    // offset=10 cursor: pass 1 reads records 10..29, pass 2 reads
    // 30..49 — the offset is consumed at the first open, not per entry.
    const std::string path =
        writeSegmentTrace("cdir_scenario_curoff.trace", 60);
    Scenario sc =
        segmentScenario(path, 20, /*offset=*/10, /*cursor=*/true);
    sc.loop = true;
    ScenarioPhase synth;
    synth.label = "synth";
    synth.startAccess = 20;
    synth.accesses = 10;
    synth.workload = privateOnlyProfile();
    sc.phases.push_back(synth);

    ScenarioWorkload wl(sc);
    std::vector<BlockAddr> segment_addrs;
    try {
        for (;;) {
            const MemAccess a = wl.next();
            if (a.addr >= 0x100 && a.addr < 0x100 + 60)
                segment_addrs.push_back(a.addr);
        }
    } catch (const std::runtime_error &) {
    }
    ASSERT_GE(segment_addrs.size(), 40u);
    for (std::uint64_t i = 0; i < 40; ++i)
        EXPECT_EQ(segment_addrs[i], 0x100 + 10 + i) << "record " << i;
    std::filesystem::remove(path);
}

TEST(ScenarioWorkload, MigrationMovesThePrivateFootprint)
{
    const std::uint64_t len = 3000;
    const Scenario sc =
        twoPhase(4, {{ScenarioEvent::Kind::Migrate, 0, 2}}, len);
    ScenarioWorkload wl(sc);

    std::set<BlockAddr> thread0_phase_a;
    for (std::uint64_t i = 0; i < len; ++i) {
        const MemAccess a = wl.next();
        if (a.core == 0)
            thread0_phase_a.insert(a.addr);
    }
    // Phase b: thread 0 issues from core 2, so core 0 goes silent and
    // core 2 touches thread 0's private region (stale-entry pressure).
    bool core2_touches_thread0 = false;
    for (std::uint64_t i = 0; i < len; ++i) {
        const MemAccess a = wl.next();
        EXPECT_NE(a.core, 0u);
        if (a.core == 2 && thread0_phase_a.count(a.addr))
            core2_touches_thread0 = true;
    }
    EXPECT_TRUE(core2_touches_thread0);
}

TEST(ScenarioWorkload, OfflineCoreIssuesNothing)
{
    const std::uint64_t len = 3000;
    const Scenario sc =
        twoPhase(4, {{ScenarioEvent::Kind::Offline, 3, 0}}, len);
    ScenarioWorkload wl(sc);
    bool saw3 = false;
    for (std::uint64_t i = 0; i < len; ++i)
        if (wl.next().core == 3)
            saw3 = true;
    EXPECT_TRUE(saw3) << "core 3 should issue while online";
    for (std::uint64_t i = 0; i < len; ++i)
        EXPECT_NE(wl.next().core, 3u);
}

TEST(ScenarioWorkload, BurstOverlayIsAProducerConsumerRing)
{
    Scenario sc;
    sc.numCores = 4;
    sc.loop = false;
    ScenarioPhase phase;
    phase.label = "burst";
    phase.accesses = 4000;
    phase.workload = privateOnlyProfile();
    phase.burst.fraction = 1.0; // every access is a burst access
    phase.burst.ringBlocks = 16;
    phase.burst.producer = 1;
    sc.phases.push_back(phase);

    ScenarioWorkload wl(sc);
    // Fan-out pattern: the producer writes a block, then each of the 3
    // other cores reads that same block.
    for (int round = 0; round < 100; ++round) {
        const MemAccess write = wl.next();
        EXPECT_EQ(write.core, 1u);
        EXPECT_TRUE(write.write);
        for (int c = 0; c < 3; ++c) {
            const MemAccess read = wl.next();
            EXPECT_EQ(read.addr, write.addr);
            EXPECT_FALSE(read.write);
            EXPECT_NE(read.core, 1u);
        }
    }
}

// --- validation --------------------------------------------------------------

TEST(ScenarioValidate, RejectsOverlappingPhases)
{
    Scenario sc = twoPhase(4, {});
    sc.phases[1].startAccess -= 100;
    try {
        sc.validate();
        FAIL() << "overlap accepted";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("overlaps"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ScenarioValidate, RejectsGapsBetweenPhases)
{
    Scenario sc = twoPhase(4, {});
    sc.phases[1].startAccess += 100;
    try {
        sc.validate();
        FAIL() << "gap accepted";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("gap"), std::string::npos)
            << e.what();
    }
}

TEST(ScenarioValidate, RejectsBadCoreIds)
{
    EXPECT_THROW(ScenarioWorkload(twoPhase(
                     4, {{ScenarioEvent::Kind::Migrate, 9, 0}})),
                 std::invalid_argument);
    EXPECT_THROW(ScenarioWorkload(twoPhase(
                     4, {{ScenarioEvent::Kind::Migrate, 0, 9}})),
                 std::invalid_argument);
    EXPECT_THROW(ScenarioWorkload(twoPhase(
                     4, {{ScenarioEvent::Kind::Offline, 4, 0}})),
                 std::invalid_argument);
}

TEST(ScenarioValidate, RejectsStarvedSchedules)
{
    // Every thread mapped to the one offline core: nothing can issue.
    EXPECT_THROW(
        ScenarioWorkload(twoPhase(
            2, {{ScenarioEvent::Kind::Migrate, 0, 1},
                {ScenarioEvent::Kind::Migrate, 1, 1},
                {ScenarioEvent::Kind::Offline, 1, 0}})),
        std::invalid_argument);
    // Offline producer cannot feed the burst ring.
    Scenario sc = twoPhase(4, {{ScenarioEvent::Kind::Offline, 1, 0}});
    sc.phases[1].burst.fraction = 0.5;
    sc.phases[1].burst.producer = 1;
    EXPECT_THROW(ScenarioWorkload{sc}, std::invalid_argument);
}

TEST(ScenarioValidate, RejectsEmptyPhasesAndFootprints)
{
    Scenario sc = twoPhase(4, {});
    sc.phases[1].accesses = 0;
    EXPECT_THROW(sc.validate(), std::invalid_argument);

    Scenario sc2 = twoPhase(4, {});
    sc2.phases[0].workload.privateBlocksPerCore = 0;
    EXPECT_THROW(sc2.validate(), std::invalid_argument);
}

TEST(ScenarioValidate, RejectsWindowingWithoutATraceSegment)
{
    Scenario offset = twoPhase(4, {});
    offset.phases[0].traceOffset = 100; // synthetic phase: meaningless
    EXPECT_THROW(offset.validate(), std::invalid_argument);

    Scenario cursor = twoPhase(4, {});
    cursor.phases[1].traceCursor = true;
    EXPECT_THROW(cursor.validate(), std::invalid_argument);
}

// --- text format -------------------------------------------------------------

constexpr const char *kScenarioText =
    "# comment line\n"
    "scenario parsed-example\n"
    "cores 4\n"
    "loop off\n"
    "phase warm 1000\n"
    "  preset DB2\n"
    "  set shared-blocks=512 write-frac=0.5\n"
    "phase shift 1000 500   # explicit start\n"
    "  preset synthetic\n"
    "  migrate 0 2\n"
    "  offline 3\n"
    "  burst fraction=0.25 ring=32 producer=2\n"
    "phase calm 500\n"
    "  online 3\n";

TEST(ScenarioParser, ParsesTheFullGrammar)
{
    const Scenario sc = parseScenarioText(kScenarioText, "inline");
    EXPECT_EQ(sc.name, "parsed-example");
    EXPECT_EQ(sc.numCores, 4u);
    EXPECT_FALSE(sc.loop);
    ASSERT_EQ(sc.phases.size(), 3u);

    EXPECT_EQ(sc.phases[0].label, "warm");
    EXPECT_EQ(sc.phases[0].accesses, 1000u);
    EXPECT_EQ(sc.phases[0].workload.sharedBlocks, 512u);
    EXPECT_DOUBLE_EQ(sc.phases[0].workload.writeFraction, 0.5);

    EXPECT_EQ(sc.phases[1].startAccess, 1000u);
    EXPECT_EQ(sc.phases[1].accesses, 500u);
    ASSERT_EQ(sc.phases[1].events.size(), 2u);
    EXPECT_EQ(sc.phases[1].events[0].kind, ScenarioEvent::Kind::Migrate);
    EXPECT_EQ(sc.phases[1].events[0].from, 0u);
    EXPECT_EQ(sc.phases[1].events[0].to, 2u);
    EXPECT_EQ(sc.phases[1].events[1].kind, ScenarioEvent::Kind::Offline);
    EXPECT_DOUBLE_EQ(sc.phases[1].burst.fraction, 0.25);
    EXPECT_EQ(sc.phases[1].burst.ringBlocks, 32u);
    EXPECT_EQ(sc.phases[1].burst.producer, 2u);

    EXPECT_EQ(sc.phases[2].startAccess, 1500u);

    // The parsed scenario actually runs.
    ScenarioWorkload wl(sc);
    for (int i = 0; i < 1000; ++i)
        ASSERT_LT(wl.next().core, 4u);
}

void
expectParseError(const std::string &text, const std::string &needle)
{
    try {
        parseScenarioText(text, "bad");
        FAIL() << "accepted: " << text;
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "error was: " << e.what();
    }
}

TEST(ScenarioParser, RejectsUnknownDirectives)
{
    expectParseError("cores 4\nphase a 100\n  teleport 0 1\n",
                     "bad:3: unknown directive 'teleport'");
    expectParseError("cores 4\nphase a 100\n  set nonsense=1\n",
                     "bad:3: unknown knob");
}

TEST(ScenarioParser, RejectsBadCoreIds)
{
    expectParseError("cores 4\nphase a 100\n  migrate 7 0\n",
                     "bad:3: core id 7 out of range");
    expectParseError("cores 4\nphase a 100\n  offline 4\n",
                     "bad:3: core id 4 out of range");
    expectParseError(
        "cores 2\nphase a 100\n  burst fraction=0.5 producer=3\n",
        "bad:3: core id 3 out of range");
}

TEST(ScenarioParser, ParsesTraceWindowOptions)
{
    const Scenario sc = parseScenarioText(
        "cores 2\n"
        "phase a 100\n"
        "  trace warm.trace\n"
        "phase b 100\n"
        "  trace long.trace offset=5000 cursor\n",
        "inline");
    ASSERT_EQ(sc.phases.size(), 2u);
    EXPECT_EQ(sc.phases[0].workload.tracePath, "warm.trace");
    EXPECT_EQ(sc.phases[0].traceOffset, 0u);
    EXPECT_FALSE(sc.phases[0].traceCursor);
    EXPECT_EQ(sc.phases[1].workload.tracePath, "long.trace");
    EXPECT_EQ(sc.phases[1].traceOffset, 5000u);
    EXPECT_TRUE(sc.phases[1].traceCursor);
}

TEST(ScenarioParser, RejectsUnknownTraceOptions)
{
    expectParseError("cores 2\nphase a 100\n  trace t.trace speed=9\n",
                     "bad:3: unknown trace option 'speed=9'");
    expectParseError("cores 2\nphase a 100\n  trace t.trace offset=ten\n",
                     "malformed trace offset");
}

TEST(ScenarioParser, RejectsOverlappingPhasesAndGaps)
{
    expectParseError("cores 4\nphase a 100\nphase b 50 100\n",
                     "overlaps");
    expectParseError("cores 4\nphase a 100\nphase b 200 100\n", "gap");
}

TEST(ScenarioParser, RejectsStructuralMistakes)
{
    expectParseError("migrate 0 1\n", "outside a phase");
    expectParseError("phase a 100\ncores 4\n",
                     "'cores' must precede the first phase");
    expectParseError("cores 4\nphase a ten\n", "malformed phase length");
    expectParseError("cores 4\nloop maybe\nphase a 10\n",
                     "loop takes 'on' or 'off'");
}

TEST(ScenarioParser, FileRoundTripAndResolve)
{
    const std::string path = tempPath("cdir_scenario_test.scn");
    {
        std::ofstream out(path);
        out << kScenarioText;
    }
    const Scenario sc = parseScenarioFile(path);
    EXPECT_EQ(sc.name, "parsed-example");
    EXPECT_EQ(sc.phases.size(), 3u);

    // resolveScenario accepts files, and rejects a file needing more
    // cores than the system has (mirroring the trace core bound).
    EXPECT_EQ(resolveScenario(path, 8).numCores, 4u);
    EXPECT_THROW(resolveScenario(path, 2), std::runtime_error);
    std::filesystem::remove(path);
}

// --- scenarios through the trace pipeline ------------------------------------

TEST(ScenarioTrace, RecordThenReplayIsBitIdentical)
{
    const std::string path = tempPath("cdir_scenario_rec.ctr");
    const Scenario sc = scenarioPreset("migration-storm", 4, 1500);
    const CmpConfig cfg = tinyConfig("Cuckoo");

    CmpSystem live(cfg);
    {
        ScenarioWorkload source(sc);
        const auto sink = makeTraceSink(path, /*binary=*/true);
        TraceRecorder recorder(source, *sink);
        live.run(recorder, 12000);
        sink->close();
    }

    CmpSystem replayed(cfg);
    {
        const auto reader =
            makeTraceReader(path, TraceReadOptions{cfg.numCores, true});
        replayed.run(*reader, ~std::uint64_t{0});
    }

    EXPECT_EQ(live.stats().accesses, replayed.stats().accesses);
    EXPECT_EQ(live.stats().cacheMisses, replayed.stats().cacheMisses);
    EXPECT_EQ(live.stats().sharingInvalidations,
              replayed.stats().sharingInvalidations);
    EXPECT_EQ(live.stats().forcedInvalidations,
              replayed.stats().forcedInvalidations);
    for (std::size_t s = 0; s < live.numSlices(); ++s) {
        EXPECT_EQ(live.slice(s).stats().insertions,
                  replayed.slice(s).stats().insertions)
            << "slice " << s;
        EXPECT_EQ(live.slice(s).validEntries(),
                  replayed.slice(s).validEntries())
            << "slice " << s;
    }
    for (std::size_t c = 0; c < live.numCaches(); ++c)
        EXPECT_EQ(live.cache(c).residentAddresses(),
                  replayed.cache(c).residentAddresses())
            << "cache " << c;
    std::filesystem::remove(path);
}

// --- runExperiment / sweep integration ---------------------------------------

ExperimentOptions
scenarioOptions(unsigned shards = 1)
{
    ExperimentOptions opts;
    opts.warmupAccesses = 2000;
    opts.measureAccesses = 12000;
    opts.occupancySampleEvery = 500;
    opts.intervalAccesses = 3000;
    opts.shards = shards;
    return opts;
}

void
expectSameIntervals(const IntervalStats &a, const IntervalStats &b,
                    const std::string &label)
{
    EXPECT_EQ(a.intervalAccesses, b.intervalAccesses) << label;
    ASSERT_EQ(a.windows.size(), b.windows.size()) << label;
    for (std::size_t w = 0; w < a.windows.size(); ++w) {
        const IntervalRecord &ra = a.windows[w];
        const IntervalRecord &rb = b.windows[w];
        const std::string at = label + " window " + std::to_string(w);
        EXPECT_EQ(ra.accesses, rb.accesses) << at;
        EXPECT_EQ(ra.cacheMisses, rb.cacheMisses) << at;
        EXPECT_EQ(ra.insertions, rb.insertions) << at;
        EXPECT_EQ(ra.attemptSum, rb.attemptSum) << at;
        EXPECT_EQ(ra.insertionAttemptCount, rb.insertionAttemptCount)
            << at;
        EXPECT_EQ(ra.forcedEvictions, rb.forcedEvictions) << at;
        EXPECT_EQ(ra.sharingInvalidations, rb.sharingInvalidations) << at;
        EXPECT_EQ(ra.forcedInvalidations, rb.forcedInvalidations) << at;
        EXPECT_EQ(ra.occupiedEntries, rb.occupiedEntries) << at;
        EXPECT_EQ(ra.capacityEntries, rb.capacityEntries) << at;
    }
}

TEST(ScenarioExperiment, ScenarioSpecDrivesACell)
{
    const ExperimentResult result =
        runExperiment(tinyConfig("Cuckoo"),
                      scenarioWorkloadParams("producer-ring"),
                      scenarioOptions());
    EXPECT_EQ(result.workload, "producer-ring");
    EXPECT_EQ(result.system.accesses, 12000u);
    EXPECT_FALSE(result.intervals.empty());
}

TEST(ScenarioExperiment, TraceAndScenarioAreMutuallyExclusive)
{
    WorkloadParams both = scenarioWorkloadParams("producer-ring");
    both.tracePath = "whatever.ctr";
    EXPECT_THROW(runExperiment(tinyConfig("Cuckoo"), both),
                 std::runtime_error);
}

TEST(ScenarioExperiment, IntervalWindowsSumToAggregates)
{
    // The eventful file's 9000-access schedule means warmup + measure
    // cross every phase and the loop wrap inside the measured region.
    const ExperimentResult result =
        runExperiment(tinyConfig("Sparse"),
                      scenarioWorkloadParams(eventfulScenarioFile()),
                      scenarioOptions());
    ASSERT_EQ(result.intervals.windows.size(), 4u);
    IntervalRecord total;
    for (const IntervalRecord &rec : result.intervals.windows)
        total.merge(rec);
    EXPECT_EQ(total.accesses, result.system.accesses);
    EXPECT_EQ(total.cacheMisses, result.system.cacheMisses);
    EXPECT_EQ(total.insertions, result.directory.insertions);
    EXPECT_EQ(total.forcedEvictions, result.directory.forcedEvictions);
    EXPECT_EQ(total.sharingInvalidations,
              result.system.sharingInvalidations);
    EXPECT_EQ(total.forcedInvalidations,
              result.system.forcedInvalidations);
    EXPECT_EQ(total.attemptSum,
              static_cast<std::uint64_t>(
                  result.directory.insertionAttempts.sum()));
    EXPECT_EQ(total.insertionAttemptCount,
              result.directory.insertionAttempts.count());
}

TEST(ScenarioExperiment, TelemetryOffCollectsNothingAndChangesNothing)
{
    ExperimentOptions with = scenarioOptions();
    ExperimentOptions without = scenarioOptions();
    without.intervalAccesses = 0;
    const WorkloadParams wl = scenarioWorkloadParams("phase-oltp-dss");
    const ExperimentResult a =
        runExperiment(tinyConfig("Cuckoo"), wl, with);
    const ExperimentResult b =
        runExperiment(tinyConfig("Cuckoo"), wl, without);
    EXPECT_TRUE(b.intervals.empty());
    EXPECT_FALSE(a.intervals.empty());
    // Counter totals agree; only the occupancy-mean sampling alignment
    // may differ (documented), so compare the exact counters.
    EXPECT_EQ(a.system.accesses, b.system.accesses);
    EXPECT_EQ(a.system.cacheMisses, b.system.cacheMisses);
    EXPECT_EQ(a.directory.insertions, b.directory.insertions);
    EXPECT_EQ(a.directory.forcedEvictions, b.directory.forcedEvictions);
    EXPECT_EQ(a.system.forcedInvalidations, b.system.forcedInvalidations);
}

/** The acceptance pin: scenario sweeps are bit-identical across
 *  --jobs and --shards settings, time series included. The axis mixes
 *  a preset with the eventful short-phase file, so the measured region
 *  crosses migrations, off/on-lining, the burst overlay, and the loop
 *  wrap — not just a stationary first phase. */
TEST(ScenarioSweep, TimeSeriesBitIdenticalAcrossJobsAndShards)
{
    SweepSpec spec;
    spec.options("", scenarioOptions());
    appendScenarioWorkloads(
        spec, eventfulScenarioFile() + ",producer-ring");
    spec.config("Cuckoo", tinyConfig("Cuckoo"));
    spec.config("Sparse", tinyConfig("Sparse"));

    const std::vector<SweepRecord> serial =
        SweepRunner(SweepOptions{1, ""}).run(spec);
    const std::vector<SweepRecord> parallel =
        SweepRunner(SweepOptions{4, ""}).run(spec);
    ASSERT_EQ(serial.size(), 4u);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const std::string label = serial[i].configLabel + "/" +
                                  serial[i].workloadLabel;
        EXPECT_EQ(serial[i].result.system.accesses,
                  parallel[i].result.system.accesses)
            << label;
        EXPECT_EQ(serial[i].result.avgOccupancy,
                  parallel[i].result.avgOccupancy)
            << label;
        EXPECT_EQ(serial[i].result.forcedInvalidationRate,
                  parallel[i].result.forcedInvalidationRate)
            << label;
        expectSameIntervals(serial[i].result.intervals,
                            parallel[i].result.intervals, label);
    }

    // Sharded execution inside a cell must reproduce the series too,
    // phase events included.
    const WorkloadParams wl =
        scenarioWorkloadParams(eventfulScenarioFile());
    const ExperimentResult one =
        runExperiment(tinyConfig("Skewed"), wl, scenarioOptions(1));
    const ExperimentResult three =
        runExperiment(tinyConfig("Skewed"), wl, scenarioOptions(3));
    EXPECT_EQ(one.system.accesses, three.system.accesses);
    EXPECT_EQ(one.avgOccupancy, three.avgOccupancy);
    expectSameIntervals(one.intervals, three.intervals, "shards=3");
}

TEST(ScenarioSweep, AppendScenarioWorkloadsExpandsAllAndRejectsUnknown)
{
    SweepSpec spec;
    appendScenarioWorkloads(spec, "all");
    EXPECT_EQ(spec.workloads().size(), scenarioPresetNames().size());
    SweepSpec bad;
    EXPECT_THROW(appendScenarioWorkloads(bad, "definitely-not-a-preset"),
                 std::runtime_error);
    SweepSpec empty;
    EXPECT_THROW(appendScenarioWorkloads(empty, ","),
                 std::runtime_error);

    // A file needing more cores than the grid's CMPs is rejected up
    // front (otherwise every cell would throw and be dropped, leaving
    // an empty table that exits 0).
    SweepSpec narrow;
    EXPECT_THROW(
        appendScenarioWorkloads(narrow, eventfulScenarioFile(), 2),
        std::runtime_error);
    EXPECT_NO_THROW(
        appendScenarioWorkloads(narrow, eventfulScenarioFile(), 4));
    // Presets adapt to any core count, so the bound never rejects them.
    EXPECT_NO_THROW(appendScenarioWorkloads(narrow, "diurnal", 2));

    // "all" composes with extra items instead of requiring sole use.
    SweepSpec mixed;
    appendScenarioWorkloads(mixed,
                            "all," + eventfulScenarioFile());
    EXPECT_EQ(mixed.workloads().size(),
              scenarioPresetNames().size() + 1);

    // Same-stem files get full-path labels (the trace-axis hardening).
    const std::string dir_a =
        tempPath("cdir_scn_a"), dir_b = tempPath("cdir_scn_b");
    std::filesystem::create_directories(dir_a);
    std::filesystem::create_directories(dir_b);
    const std::string file_a = dir_a + "/night.scn";
    const std::string file_b = dir_b + "/night.scn";
    for (const std::string &file : {file_a, file_b}) {
        std::ofstream out(file);
        out << "cores 4\nphase a 100\n";
    }
    SweepSpec collide;
    appendScenarioWorkloads(collide, file_a + "," + file_b);
    ASSERT_EQ(collide.workloads().size(), 2u);
    EXPECT_EQ(collide.workloads()[0].label, file_a);
    EXPECT_EQ(collide.workloads()[1].label, file_b);
    std::filesystem::remove_all(dir_a);
    std::filesystem::remove_all(dir_b);
}

// --- IntervalStats::merge ----------------------------------------------------

/** Per-slice-group partial series merged == the whole-system series:
 *  the exactness property DirectoryStats/CmpStats::merge pins for the
 *  end-of-run counters (PR 4), extended to interval telemetry. */
TEST(IntervalStatsMerge, PerSliceGroupPartialsMergeExactly)
{
    const CmpConfig cfg = tinyConfig("Sparse");
    CmpSystem system(cfg);
    ScenarioWorkload source(
        scenarioPreset("migration-storm", cfg.numCores, 1500));

    const std::uint64_t interval = 2000;
    const std::size_t groups = 2;
    IntervalStats whole;
    whole.intervalAccesses = interval;
    std::vector<IntervalStats> partial(groups);
    for (auto &p : partial)
        p.intervalAccesses = interval;

    std::vector<std::uint64_t> prev_insertions(system.numSlices(), 0);
    std::vector<std::uint64_t> prev_evictions(system.numSlices(), 0);
    std::uint64_t prev_misses = 0;
    for (int w = 0; w < 6; ++w) {
        system.run(source, interval);
        IntervalRecord whole_rec;
        whole_rec.cacheMisses = system.stats().cacheMisses - prev_misses;
        prev_misses = system.stats().cacheMisses;
        std::vector<IntervalRecord> group_rec(groups);
        // System-level counters live in group 0's partial; per-slice
        // counters split by home slice. merge() must not care.
        group_rec[0].cacheMisses = whole_rec.cacheMisses;
        for (std::size_t s = 0; s < system.numSlices(); ++s) {
            const DirectoryStats &stats = system.slice(s).stats();
            IntervalRecord &rec = group_rec[s % groups];
            rec.insertions += stats.insertions - prev_insertions[s];
            rec.forcedEvictions +=
                stats.forcedEvictions - prev_evictions[s];
            rec.occupiedEntries += system.slice(s).validEntries();
            rec.capacityEntries += system.slice(s).capacity();
            prev_insertions[s] = stats.insertions;
            prev_evictions[s] = stats.forcedEvictions;
        }
        for (const IntervalRecord &rec : group_rec) {
            whole_rec.insertions += rec.insertions;
            whole_rec.forcedEvictions += rec.forcedEvictions;
            whole_rec.occupiedEntries += rec.occupiedEntries;
            whole_rec.capacityEntries += rec.capacityEntries;
        }
        whole.windows.push_back(whole_rec);
        for (std::size_t g = 0; g < groups; ++g)
            partial[g].windows.push_back(group_rec[g]);
    }

    IntervalStats merged;
    for (const IntervalStats &p : partial)
        merged.merge(p);
    expectSameIntervals(whole, merged, "per-slice-group merge");
}

TEST(IntervalStatsMerge, RejectsMismatchedWindowCuts)
{
    IntervalStats a, b;
    a.intervalAccesses = 10'000;
    b.intervalAccesses = 50'000;
    EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(IntervalStatsMerge, MergeIntoEmptyAdoptsAndExtends)
{
    IntervalStats longer;
    longer.intervalAccesses = 100;
    longer.windows.resize(3);
    longer.windows[2].insertions = 7;

    IntervalStats merged;
    merged.merge(longer);
    EXPECT_EQ(merged.intervalAccesses, 100u);
    ASSERT_EQ(merged.windows.size(), 3u);
    EXPECT_EQ(merged.windows[2].insertions, 7u);

    IntervalStats shorter;
    shorter.intervalAccesses = 100;
    shorter.windows.resize(1);
    shorter.windows[0].insertions = 5;
    merged.merge(shorter);
    ASSERT_EQ(merged.windows.size(), 3u);
    EXPECT_EQ(merged.windows[0].insertions, 5u);
    EXPECT_EQ(merged.windows[2].insertions, 7u);
}

} // namespace
} // namespace cdir
