/**
 * @file
 * Sharded intra-experiment parallelism: the determinism contract.
 *
 * CmpSystem::setShards partitions the directory slices across parallel
 * execution lanes; because every block address maps to exactly one
 * slice, slices share no state and the sharded driver must be
 * *bit-identical* to the serial one — same per-slice statistics, same
 * cache state, same merged experiment metrics, at any shard count and
 * any batch window. This suite pins that contract:
 *
 *  - whole-system runs at shards {1, 2, 4} vs a serial baseline for
 *    every registered organization, synthetic and trace-driven,
 *    compared slice by slice;
 *  - ExperimentResult equality (exact doubles included) through
 *    ExperimentOptions::shards, batch windows 1 and 16;
 *  - the golden-trace tables (tests/golden_trace_values.inc) must
 *    reproduce under sharded replay — both the Shared-L2 and the
 *    Private-L2 pins;
 *  - setShards edge cases (clamping to the slice count, re-sharding an
 *    existing system between runs).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "directory/registry.hh"
#include "golden_trace_util.hh"
#include "sim/experiment.hh"
#include "sim/sweep.hh"

namespace cdir {
namespace {

using test::goldenReplayConfig;
using test::kGolden;
using test::kGoldenPrivateL2;
using test::measureGolden;

/** Small synthetic profile that misses and conflicts on the tiny CMP. */
WorkloadParams
stressWorkload(std::uint64_t seed = 7)
{
    WorkloadParams wl;
    wl.name = "shard-stress";
    wl.numCores = 4;
    wl.seed = seed;
    wl.codeBlocks = 96;
    wl.sharedBlocks = 384;
    wl.privateBlocksPerCore = 192;
    wl.writeFraction = 0.3;
    return wl;
}

/** Per-slice and system-level equality, field by field. */
void
expectSystemsIdentical(CmpSystem &a, CmpSystem &b,
                       const std::string &label)
{
    ASSERT_EQ(a.numSlices(), b.numSlices()) << label;
    for (std::size_t s = 0; s < a.numSlices(); ++s) {
        const DirectoryStats &da = a.slice(s).stats();
        const DirectoryStats &db = b.slice(s).stats();
        const std::string at = label + " slice " + std::to_string(s);
        EXPECT_EQ(da.lookups, db.lookups) << at;
        EXPECT_EQ(da.hits, db.hits) << at;
        EXPECT_EQ(da.insertions, db.insertions) << at;
        EXPECT_EQ(da.sharerAdds, db.sharerAdds) << at;
        EXPECT_EQ(da.writeUpgrades, db.writeUpgrades) << at;
        EXPECT_EQ(da.sharerRemovals, db.sharerRemovals) << at;
        EXPECT_EQ(da.entryFrees, db.entryFrees) << at;
        EXPECT_EQ(da.forcedEvictions, db.forcedEvictions) << at;
        EXPECT_EQ(da.forcedBlockInvalidations,
                  db.forcedBlockInvalidations)
            << at;
        EXPECT_EQ(da.insertFailures, db.insertFailures) << at;
        EXPECT_EQ(da.insertionAttempts.count(),
                  db.insertionAttempts.count())
            << at;
        EXPECT_EQ(da.insertionAttempts.sum(), db.insertionAttempts.sum())
            << at;
        for (std::size_t v = 0; v <= da.attemptHistogram.maxValue(); ++v)
            EXPECT_EQ(da.attemptHistogram.at(v),
                      db.attemptHistogram.at(v))
                << at << " bucket " << v;
        EXPECT_EQ(a.slice(s).validEntries(), b.slice(s).validEntries())
            << at;
    }
    const CmpStats &sa = a.stats();
    const CmpStats &sb = b.stats();
    EXPECT_EQ(sa.accesses, sb.accesses) << label;
    EXPECT_EQ(sa.cacheHits, sb.cacheHits) << label;
    EXPECT_EQ(sa.cacheMisses, sb.cacheMisses) << label;
    EXPECT_EQ(sa.writeUpgrades, sb.writeUpgrades) << label;
    EXPECT_EQ(sa.cacheEvictions, sb.cacheEvictions) << label;
    EXPECT_EQ(sa.sharingInvalidations, sb.sharingInvalidations) << label;
    EXPECT_EQ(sa.forcedInvalidations, sb.forcedInvalidations) << label;
    EXPECT_EQ(sa.directoryOccupancy.count(),
              sb.directoryOccupancy.count())
        << label;
    EXPECT_EQ(sa.directoryOccupancy.mean(), sb.directoryOccupancy.mean())
        << label;
    // Final cache contents must agree too (invalidations landed on the
    // same blocks).
    ASSERT_EQ(a.numCaches(), b.numCaches()) << label;
    for (std::size_t c = 0; c < a.numCaches(); ++c) {
        EXPECT_EQ(a.cache(c).residentAddresses(),
                  b.cache(c).residentAddresses())
            << label << " cache " << c;
    }
}

class ShardedOrganization : public testing::TestWithParam<std::string>
{
};

TEST_P(ShardedOrganization, SyntheticRunBitIdenticalAtAnyShardCount)
{
    for (const std::size_t window : {std::size_t{1}, std::size_t{16}}) {
        CmpConfig cfg =
            goldenReplayConfig(GetParam(), CmpConfigKind::SharedL2);
        cfg.batchWindow = window;

        CmpSystem serial(cfg);
        SyntheticWorkload serial_gen(stressWorkload());
        serial.run(serial_gen, 20000, 500);

        for (const unsigned shards : {1u, 2u, 4u}) {
            CmpSystem sharded(cfg);
            sharded.setShards(shards);
            EXPECT_EQ(sharded.shards(), shards);
            SyntheticWorkload gen(stressWorkload());
            sharded.run(gen, 20000, 500);
            expectSystemsIdentical(
                serial, sharded,
                GetParam() + " window " + std::to_string(window) +
                    " shards " + std::to_string(shards));
        }
    }
}

TEST_P(ShardedOrganization, TraceRunBitIdenticalAtAnyShardCount)
{
    const std::string path =
        std::string(CDIR_TEST_DATA_DIR) + "/mixed.ctr";
    CmpConfig cfg =
        goldenReplayConfig(GetParam(), CmpConfigKind::SharedL2);

    CmpSystem serial(cfg);
    {
        const auto reader = makeTraceReader(
            path, TraceReadOptions{cfg.numCores, true});
        serial.run(*reader, ~std::uint64_t{0}, 200);
    }
    for (const unsigned shards : {2u, 4u}) {
        CmpSystem sharded(cfg);
        sharded.setShards(shards);
        const auto reader = makeTraceReader(
            path, TraceReadOptions{cfg.numCores, true});
        sharded.run(*reader, ~std::uint64_t{0}, 200);
        expectSystemsIdentical(serial, sharded,
                               GetParam() + " trace shards " +
                                   std::to_string(shards));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOrganizations, ShardedOrganization,
    testing::ValuesIn(DirectoryRegistry::instance().names()),
    [](const testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

// --- ExperimentResult equality through ExperimentOptions::shards -------------

void
expectResultsIdentical(const ExperimentResult &a,
                       const ExperimentResult &b,
                       const std::string &label)
{
    EXPECT_EQ(a.workload, b.workload) << label;
    EXPECT_EQ(a.organization, b.organization) << label;
    // Exact floating-point equality on purpose: the sharded driver must
    // execute the identical arithmetic, not a reassociated variant.
    EXPECT_EQ(a.avgInsertionAttempts, b.avgInsertionAttempts) << label;
    EXPECT_EQ(a.forcedInvalidationRate, b.forcedInvalidationRate)
        << label;
    EXPECT_EQ(a.avgOccupancy, b.avgOccupancy) << label;
    EXPECT_EQ(a.directoryCapacity, b.directoryCapacity) << label;
    EXPECT_EQ(a.directory.lookups, b.directory.lookups) << label;
    EXPECT_EQ(a.directory.hits, b.directory.hits) << label;
    EXPECT_EQ(a.directory.insertions, b.directory.insertions) << label;
    EXPECT_EQ(a.directory.forcedEvictions, b.directory.forcedEvictions)
        << label;
    EXPECT_EQ(a.directory.forcedBlockInvalidations,
              b.directory.forcedBlockInvalidations)
        << label;
    EXPECT_EQ(a.directory.insertFailures, b.directory.insertFailures)
        << label;
    EXPECT_EQ(a.system.accesses, b.system.accesses) << label;
    EXPECT_EQ(a.system.cacheMisses, b.system.cacheMisses) << label;
    EXPECT_EQ(a.system.sharingInvalidations,
              b.system.sharingInvalidations)
        << label;
    EXPECT_EQ(a.system.forcedInvalidations, b.system.forcedInvalidations)
        << label;
    for (std::size_t v = 0; v <= a.attemptHistogram.maxValue(); ++v)
        EXPECT_EQ(a.attemptHistogram.at(v), b.attemptHistogram.at(v))
            << label << " bucket " << v;
}

TEST(ShardedExperiment, SyntheticResultsIdenticalForEveryOrganization)
{
    ExperimentOptions opts;
    opts.warmupAccesses = 8000;
    opts.measureAccesses = 12000;
    opts.occupancySampleEvery = 400;

    for (const std::string &org :
         DirectoryRegistry::instance().names()) {
        const CmpConfig cfg =
            goldenReplayConfig(org, CmpConfigKind::SharedL2);
        ExperimentOptions serial = opts;
        serial.shards = 1;
        ExperimentOptions sharded = opts;
        sharded.shards = 4;
        expectResultsIdentical(
            runExperiment(cfg, stressWorkload(), serial),
            runExperiment(cfg, stressWorkload(), sharded),
            org + " synthetic");
    }
}

TEST(ShardedExperiment, TraceResultsIdenticalForEveryOrganization)
{
    WorkloadParams wl;
    wl.name = "mixed";
    wl.numCores = 4;
    wl.tracePath = std::string(CDIR_TEST_DATA_DIR) + "/mixed.ctr";

    ExperimentOptions opts;
    opts.warmupAccesses = 1000;
    opts.measureAccesses = 4000;
    opts.occupancySampleEvery = 200;

    for (const std::string &org :
         DirectoryRegistry::instance().names()) {
        const CmpConfig cfg =
            goldenReplayConfig(org, CmpConfigKind::SharedL2);
        ExperimentOptions serial = opts;
        serial.shards = 1;
        ExperimentOptions sharded = opts;
        sharded.shards = 3; // deliberately not a divisor of 4 slices
        const ExperimentResult a = runExperiment(cfg, wl, serial);
        const ExperimentResult b = runExperiment(cfg, wl, sharded);
        ASSERT_GT(a.system.accesses, 0u) << org;
        expectResultsIdentical(a, b, org + " trace");
    }
}

// --- the golden pins must reproduce under sharded replay ---------------------

TEST(ShardedGoldenTrace, SharedL2TableReproducesAtFourShards)
{
    for (const auto &expected : kGolden) {
        const auto got =
            measureGolden(expected.trace, expected.organization,
                          CmpConfigKind::SharedL2, 4);
        const std::string label = std::string(expected.trace) + " x " +
                                  expected.organization + " shards=4";
        EXPECT_EQ(got.insertions, expected.insertions) << label;
        EXPECT_EQ(got.dirHits, expected.dirHits) << label;
        EXPECT_EQ(got.forcedEvictions, expected.forcedEvictions)
            << label;
        EXPECT_EQ(got.sharerRemovals, expected.sharerRemovals) << label;
        EXPECT_EQ(got.validEntries, expected.validEntries) << label;
        EXPECT_EQ(got.cacheMisses, expected.cacheMisses) << label;
        EXPECT_EQ(got.sharingInvalidations,
                  expected.sharingInvalidations)
            << label;
        EXPECT_EQ(got.forcedInvalidations, expected.forcedInvalidations)
            << label;
    }
}

TEST(ShardedGoldenTrace, PrivateL2TableReproducesAtFourShards)
{
    for (const auto &expected : kGoldenPrivateL2) {
        const auto got =
            measureGolden(expected.trace, expected.organization,
                          CmpConfigKind::PrivateL2, 4);
        const std::string label = std::string(expected.trace) + " x " +
                                  expected.organization + " shards=4";
        EXPECT_EQ(got.insertions, expected.insertions) << label;
        EXPECT_EQ(got.forcedEvictions, expected.forcedEvictions)
            << label;
        EXPECT_EQ(got.validEntries, expected.validEntries) << label;
        EXPECT_EQ(got.cacheMisses, expected.cacheMisses) << label;
        EXPECT_EQ(got.forcedInvalidations, expected.forcedInvalidations)
            << label;
    }
}

// --- setShards edge cases ----------------------------------------------------

TEST(ShardEngine, ShardCountClampsToSliceCount)
{
    CmpSystem system(
        goldenReplayConfig("Cuckoo", CmpConfigKind::SharedL2));
    system.setShards(64); // only 4 slices exist
    EXPECT_EQ(system.shards(), 4u);
    system.setShards(0); // 0 means serial
    EXPECT_EQ(system.shards(), 1u);
}

// --- shard-aware directoryCoversCaches ---------------------------------------

TEST(ShardEngine, CoverageCheckAgreesAtEveryShardCount)
{
    // The invariant walk fans out across the shard lanes; the verdict
    // must match the serial check for every organization (including
    // the imprecise Tagless filters, whose probe may over-approximate
    // sharers but must still cover every resident block).
    for (const std::string &org :
         DirectoryRegistry::instance().names()) {
        const CmpConfig cfg =
            goldenReplayConfig(org, CmpConfigKind::SharedL2);

        CmpSystem serial(cfg);
        SyntheticWorkload serial_gen(stressWorkload(17));
        serial.run(serial_gen, 12000);
        const bool expected = serial.directoryCoversCaches();

        CmpSystem sharded(cfg);
        sharded.setShards(3);
        SyntheticWorkload gen(stressWorkload(17));
        sharded.run(gen, 12000);
        EXPECT_EQ(sharded.directoryCoversCaches(), expected) << org;
        EXPECT_TRUE(expected) << org;
    }
}

TEST(ShardEngine, MisSizedMirroringConfigurationIsRejected)
{
    // Regression: a very large system whose slice count exceeds the
    // private cache's sets used to slip past a release-build assert and
    // construct cache-mirroring slices covering *zero* sets. The
    // geometry is now rejected at construction.
    for (const char *org : {"DuplicateTag", "Tagless"}) {
        CmpConfig cfg;
        cfg.kind = CmpConfigKind::SharedL2;
        cfg.numCores = 64;
        cfg.numSlices = 64;                  // > the 32 cache sets below
        cfg.privateCache = CacheConfig{32, 2};
        cfg.directory.organization = org;
        cfg.directory.trackedCacheAssoc = cfg.privateCache.assoc;
        EXPECT_THROW(CmpSystem{cfg}, std::invalid_argument) << org;
    }
    // Non-mirroring organizations are not bound by the cache geometry.
    CmpConfig ok;
    ok.kind = CmpConfigKind::SharedL2;
    ok.numCores = 64;
    ok.numSlices = 64;
    ok.privateCache = CacheConfig{32, 2};
    ok.directory.organization = "Cuckoo";
    ok.directory.sets = 16;
    EXPECT_NO_THROW(CmpSystem{ok});
}

TEST(ShardEngine, NonPowerOfTwoSliceCountIsRejected)
{
    CmpConfig cfg = goldenReplayConfig("Cuckoo", CmpConfigKind::SharedL2);
    cfg.numSlices = 3;
    EXPECT_THROW(CmpSystem{cfg}, std::invalid_argument);
}

// --- topology-aware lane mapping ---------------------------------------------

TEST(ShardEngine, DefaultMappingIsContiguousAndBalanced)
{
    CmpSystem system(
        goldenReplayConfig("Cuckoo", CmpConfigKind::SharedL2));
    const std::size_t slices = system.numSlices();
    system.setShards(3);
    // floor(s * K / n): lanes are contiguous slice groups, monotone in
    // the slice index, never empty, and balanced within one slice.
    std::vector<std::size_t> perLane(system.shards(), 0);
    std::size_t prev = 0;
    for (std::size_t s = 0; s < slices; ++s) {
        const std::size_t lane = system.shardOfSlice(s);
        ASSERT_LT(lane, system.shards());
        EXPECT_GE(lane, prev) << "slice " << s;
        prev = lane;
        ++perLane[lane];
    }
    for (std::size_t lane = 0; lane < perLane.size(); ++lane) {
        EXPECT_GE(perLane[lane], slices / system.shards()) << lane;
        EXPECT_LE(perLane[lane], slices / system.shards() + 1) << lane;
    }
}

TEST(ShardEngine, CustomMappingKeepsBitIdentity)
{
    const CmpConfig cfg =
        goldenReplayConfig("Cuckoo", CmpConfigKind::SharedL2);

    CmpSystem serial(cfg);
    SyntheticWorkload serial_gen(stressWorkload(23));
    serial.run(serial_gen, 16000, 500);

    // Strided (anti-contiguous) placement — the worst case for the
    // default policy — must still replay bit-identically, because the
    // serial apply phase follows first-touch order, not lane order.
    CmpSystem mapped(cfg);
    mapped.setShards(2);
    mapped.setShardMapping({1, 0, 1, 0});
    EXPECT_EQ(mapped.shardOfSlice(0), 1u);
    EXPECT_EQ(mapped.shardOfSlice(3), 0u);
    SyntheticWorkload gen(stressWorkload(23));
    mapped.run(gen, 16000, 500);
    expectSystemsIdentical(serial, mapped, "custom mapping");
}

TEST(ShardEngine, InvalidMappingIsRejected)
{
    CmpSystem system(
        goldenReplayConfig("Cuckoo", CmpConfigKind::SharedL2));
    system.setShards(2);
    // Wrong size (4 slices exist).
    EXPECT_THROW(system.setShardMapping({0, 1}), std::invalid_argument);
    // Lane index beyond the shard count.
    EXPECT_THROW(system.setShardMapping({0, 0, 0, 2}),
                 std::invalid_argument);
    // The rejected calls left the previous mapping intact.
    for (std::size_t s = 0; s < system.numSlices(); ++s)
        EXPECT_LT(system.shardOfSlice(s), system.shards());
}

TEST(ShardEngine, SetShardsRestoresDefaultMapping)
{
    CmpSystem system(
        goldenReplayConfig("Cuckoo", CmpConfigKind::SharedL2));
    system.setShards(2);
    system.setShardMapping({1, 0, 1, 0});
    system.setShards(2); // same count, but the default map comes back
    for (std::size_t s = 0; s < system.numSlices(); ++s)
        EXPECT_EQ(system.shardOfSlice(s),
                  s * 2 / system.numSlices());
}

// --- 256-core differential stress --------------------------------------------

/** 256-core, 256-slice CMP with one small private cache per core. */
CmpConfig
thousandCoreConfig(const char *organization, SharerFormat format)
{
    CmpConfig cfg;
    cfg.kind = CmpConfigKind::PrivateL2;
    cfg.numCores = 256;
    cfg.numSlices = 256;
    cfg.privateCache = CacheConfig{64, 2}; // 128 frames per core
    cfg.directory.organization = organization;
    cfg.directory.format = format;
    cfg.directory.ways = 4;
    cfg.directory.sets = 32; // 128 entries per slice (1x)
    return cfg;
}

WorkloadParams
thousandCoreWorkload()
{
    WorkloadParams wl;
    wl.name = "256-core-stress";
    wl.numCores = 256;
    wl.seed = 90210;
    wl.codeBlocks = 4096;
    wl.sharedBlocks = 16384;
    wl.privateBlocksPerCore = 96;
    wl.writeFraction = 0.3;
    return wl;
}

TEST(ShardEngine, TwoFiftySixSliceBitIdentityAcrossShardCounts)
{
    // The tentpole contract at CMP scale: a 256-slice system running
    // the memory-lean formats stays bit-identical at shards {1, 2, 4}.
    const struct
    {
        const char *organization;
        SharerFormat format;
    } kConfigs[] = {
        {"Cuckoo", SharerFormat::Compressed},
        {"Sparse", SharerFormat::Hierarchical},
    };
    for (const auto &cc : kConfigs) {
        const CmpConfig cfg =
            thousandCoreConfig(cc.organization, cc.format);
        CmpSystem serial(cfg);
        SyntheticWorkload serial_gen(thousandCoreWorkload());
        serial.run(serial_gen, 80000, 2000);

        for (const unsigned shards : {2u, 4u}) {
            CmpSystem sharded(cfg);
            sharded.setShards(shards);
            SyntheticWorkload gen(thousandCoreWorkload());
            sharded.run(gen, 80000, 2000);
            expectSystemsIdentical(serial, sharded,
                                   std::string(cc.organization) +
                                       " 256-slice shards " +
                                       std::to_string(shards));
        }
    }
}

TEST(ShardEngine, LeanFormatsMatchFullVectorSystemStats)
{
    // Compressed and Hierarchical are precise representations whose
    // modeled storage does not alter protocol decisions, so a whole
    // 256-core system run must produce identical statistics to the
    // full-vector baseline — the system-level half of the lean-vs-full
    // equivalence audit.
    const CmpConfig base =
        thousandCoreConfig("Cuckoo", SharerFormat::FullVector);
    CmpSystem full(base);
    SyntheticWorkload full_gen(thousandCoreWorkload());
    full.run(full_gen, 60000, 2000);

    for (const SharerFormat format :
         {SharerFormat::Compressed, SharerFormat::Hierarchical}) {
        CmpConfig cfg = base;
        cfg.directory.format = format;
        CmpSystem lean(cfg);
        SyntheticWorkload gen(thousandCoreWorkload());
        lean.run(gen, 60000, 2000);
        expectSystemsIdentical(full, lean,
                               "lean format vs full vector");
    }
}

TEST(ShardEngine, EstimatedMemoryBytesIsShardInvariant)
{
    // The footprint estimate is part of the serialized campaign record,
    // so it must be as deterministic as every other counter.
    const CmpConfig cfg =
        thousandCoreConfig("Cuckoo", SharerFormat::Compressed);
    CmpSystem serial(cfg);
    SyntheticWorkload serial_gen(thousandCoreWorkload());
    serial.run(serial_gen, 40000);
    const std::size_t expected = serial.estimatedMemoryBytes();
    EXPECT_GT(expected, 0u);

    CmpSystem sharded(cfg);
    sharded.setShards(4);
    SyntheticWorkload gen(thousandCoreWorkload());
    sharded.run(gen, 40000);
    EXPECT_EQ(sharded.estimatedMemoryBytes(), expected);
}

TEST(ShardEngine, ReShardingBetweenRunsKeepsDeterminism)
{
    const CmpConfig cfg =
        goldenReplayConfig("Skewed", CmpConfigKind::SharedL2);

    CmpSystem serial(cfg);
    SyntheticWorkload serial_gen(stressWorkload(31));
    serial.run(serial_gen, 16000);

    // Same stream, but the shard count changes mid-way: the contract
    // holds across reconfiguration because per-window semantics never
    // depend on the lane count.
    CmpSystem resharded(cfg);
    SyntheticWorkload gen(stressWorkload(31));
    resharded.setShards(2);
    resharded.run(gen, 8000);
    resharded.setShards(4);
    resharded.run(gen, 4000);
    resharded.setShards(1);
    resharded.run(gen, 4000);
    expectSystemsIdentical(serial, resharded, "resharded");
}

} // namespace
} // namespace cdir
