/**
 * @file
 * Cost-model and latency-histogram coverage:
 *
 *  - LatencyHistogram bucket geometry round-trips, nearest-rank
 *    percentile pins, exact merge (sharded partials reproduce the
 *    single accumulator bit for bit), prefix subtraction, and the
 *    unallocated == all-zero equality contract;
 *  - FixedLatencyCostModel / MeshCostModel latency arithmetic against
 *    hand-built outcomes, mesh geometry, and the factory;
 *  - experiment integration: the untimed path allocates no histogram
 *    and a timed run leaves every behavioural counter untouched;
 *    latency percentiles are bit-identical across --jobs x --shards;
 *    interval-window histograms sum exactly to the whole-run one;
 *  - golden pins: exact p50/p99 for a committed fixture trace under
 *    both models on the fixed golden replay CMP.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "model/cost_model.hh"
#include "model/latency_histogram.hh"
#include "sim/sweep.hh"
#include "workload/trace.hh"

#include "golden_trace_util.hh"

namespace cdir {
namespace {

// --- histogram geometry ------------------------------------------------------

TEST(LatencyHistogram, BucketGeometryRoundTrips)
{
    // Every bucket's lower bound maps back to that bucket...
    for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b)
        ASSERT_EQ(LatencyHistogram::bucketOf(
                      LatencyHistogram::bucketLowerBound(b)),
                  b)
            << "bucket " << b;
    // ...and bucket lower bounds are strictly increasing.
    for (std::size_t b = 1; b < LatencyHistogram::kBuckets; ++b)
        ASSERT_LT(LatencyHistogram::bucketLowerBound(b - 1),
                  LatencyHistogram::bucketLowerBound(b))
            << "bucket " << b;
    // A value never precedes its bucket's lower bound.
    for (std::uint64_t v : {0ull, 1ull, 63ull, 64ull, 65ull, 100ull,
                            1000ull, 123456ull, 1ull << 20,
                            0xFFFFFFFFull})
        ASSERT_LE(LatencyHistogram::bucketLowerBound(
                      LatencyHistogram::bucketOf(v)),
                  v)
            << "value " << v;
}

TEST(LatencyHistogram, SmallValuesAreExact)
{
    // Below kLinearMax each value owns its bucket: recorded samples
    // come back exactly.
    LatencyHistogram h;
    for (std::uint64_t v = 0; v < LatencyHistogram::kLinearMax; ++v)
        h.add(v);
    EXPECT_EQ(h.count(), LatencyHistogram::kLinearMax);
    for (std::uint64_t v = 0; v < LatencyHistogram::kLinearMax; ++v)
        EXPECT_EQ(h.bucketAt(static_cast<std::size_t>(v)), 1u);
    EXPECT_EQ(h.maxLatency(), LatencyHistogram::kLinearMax - 1);
}

TEST(LatencyHistogram, TopBucketClampsHugeValues)
{
    LatencyHistogram h;
    h.add(~std::uint64_t{0});
    h.add(std::uint64_t{1} << 40);
    EXPECT_EQ(h.bucketAt(LatencyHistogram::kBuckets - 1), 2u);
    // The raw sum is unclamped even though the buckets saturate.
    EXPECT_EQ(h.totalCycles(),
              ~std::uint64_t{0} + (std::uint64_t{1} << 40));
}

TEST(LatencyHistogram, NearestRankPercentiles)
{
    // 100 samples of value i+1 (1..100): pN is the N-th smallest.
    LatencyHistogram h;
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.add(v);
    EXPECT_EQ(h.percentile(500), 50u);
    // Above kLinearMax values quantise to their bucket lower bound:
    // octave 6 has 2-cycle granularity, so the 99th sample (99)
    // reports 98 and the 100th (100) reports 100.
    EXPECT_EQ(h.percentile(990), 98u);
    EXPECT_EQ(h.percentile(999), 100u);
    EXPECT_EQ(h.percentile(1000), 100u);
    EXPECT_EQ(h.percentile(1), 1u);

    // Empty histogram: all percentiles 0.
    const LatencyHistogram empty;
    EXPECT_EQ(empty.percentile(500), 0u);
    EXPECT_TRUE(empty.empty());
}

TEST(LatencyHistogram, PercentileReportsBucketLowerBound)
{
    // Above the linear range values quantise to ~3%: the reported
    // percentile is the lower bound of the sample's bucket.
    LatencyHistogram h;
    h.add(1000);
    const std::uint64_t expect = LatencyHistogram::bucketLowerBound(
        LatencyHistogram::bucketOf(1000));
    EXPECT_EQ(h.percentile(500), expect);
    EXPECT_LE(expect, 1000u);
    EXPECT_GT(expect, 1000u - 1000u / 16);
}

// --- histogram merge/subtract ------------------------------------------------

/** Deterministic sample stream (LCG — no std randomness in tests). */
std::uint64_t
nextSample(std::uint64_t &state)
{
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return (state >> 33) % 5000;
}

TEST(LatencyHistogram, ShardedMergeIsBitIdentical)
{
    // One accumulator vs the same stream dealt across {2, 4} shards
    // and merged: identical buckets, counts, and percentiles.
    for (const std::size_t shards : {2u, 4u}) {
        LatencyHistogram whole;
        std::vector<LatencyHistogram> parts(shards);
        std::uint64_t state = 42;
        for (std::size_t i = 0; i < 10'000; ++i) {
            const std::uint64_t v = nextSample(state);
            whole.add(v);
            parts[i % shards].add(v);
        }
        LatencyHistogram merged;
        for (const LatencyHistogram &part : parts)
            merged.merge(part);
        EXPECT_TRUE(merged == whole) << shards << " shards";
        EXPECT_EQ(merged.percentile(500), whole.percentile(500));
        EXPECT_EQ(merged.percentile(990), whole.percentile(990));
        EXPECT_EQ(merged.percentile(999), whole.percentile(999));
        EXPECT_EQ(merged.totalCycles(), whole.totalCycles());
    }
}

TEST(LatencyHistogram, SubtractCutsSnapshotDeltas)
{
    // Cumulative snapshots subtract into window deltas, and the
    // windows merge back to the cumulative total.
    LatencyHistogram cumulative, before, window_sum;
    std::uint64_t state = 7;
    for (std::size_t w = 0; w < 5; ++w) {
        before = cumulative;
        for (std::size_t i = 0; i < 1000; ++i)
            cumulative.add(nextSample(state));
        LatencyHistogram window = cumulative;
        window.subtract(before);
        EXPECT_EQ(window.count(), 1000u);
        window_sum.merge(window);
    }
    EXPECT_TRUE(window_sum == cumulative);
}

TEST(LatencyHistogram, SubtractRejectsNonPrefix)
{
    LatencyHistogram a, b;
    a.add(10);
    b.add(20);
    b.add(30);
    EXPECT_THROW(a.subtract(b), std::invalid_argument);

    // Same count but different buckets is just as invalid.
    LatencyHistogram c, d;
    c.add(10);
    d.add(20);
    EXPECT_THROW(c.subtract(d), std::invalid_argument);
}

TEST(LatencyHistogram, UnallocatedEqualsAllocatedZero)
{
    LatencyHistogram unallocated;
    LatencyHistogram allocated;
    allocated.preallocate();
    EXPECT_TRUE(unallocated == allocated);
    EXPECT_TRUE(allocated == unallocated);

    allocated.add(3);
    EXPECT_FALSE(unallocated == allocated);

    // Merging an empty histogram is a no-op that allocates nothing.
    LatencyHistogram target;
    target.merge(unallocated);
    EXPECT_TRUE(target == unallocated);
}

// --- cost models -------------------------------------------------------------

/** Hand-build one outcome in a context bound to @p caches caches. */
struct OutcomeFixture
{
    DirAccessContext ctx;
    DirAccessOutcome *out = nullptr;

    explicit OutcomeFixture(std::size_t caches) : ctx(caches)
    {
        out = &ctx.beginOutcome();
    }
};

TEST(CostModelFactory, NamesAndErrors)
{
    const CmpConfig config =
        CmpConfig::paperConfig(CmpConfigKind::SharedL2, 4);
    EXPECT_EQ(costModelNames(),
              (std::vector<std::string>{"fixed", "mesh"}));
    EXPECT_TRUE(isCostModelName("fixed"));
    EXPECT_TRUE(isCostModelName("mesh"));
    EXPECT_FALSE(isCostModelName("warp-drive"));
    EXPECT_EQ(makeCostModel("fixed", config)->name(), "fixed");
    EXPECT_EQ(makeCostModel("mesh", config)->name(), "mesh");
    EXPECT_THROW(makeCostModel("warp-drive", config),
                 std::invalid_argument);
}

TEST(FixedLatencyCostModel, LatencyArithmetic)
{
    const CostModelParams p;
    const FixedLatencyCostModel model(p);
    const DirRequest req{0x1234, 0, true};

    // Plain hit: probe + forward.
    {
        OutcomeFixture f(8);
        f.out->hit = true;
        EXPECT_EQ(model.accessLatency(req, *f.out, f.ctx, 0),
                  p.directoryCycles + p.forwardCycles);
    }
    // Miss with a 3-attempt cuckoo chain: probe + 2 relocations +
    // off-chip fill.
    {
        OutcomeFixture f(8);
        f.out->inserted = true;
        f.out->attempts = 3;
        EXPECT_EQ(model.accessLatency(req, *f.out, f.ctx, 0),
                  p.directoryCycles + 2 * p.relocationCycles +
                      p.offChipCycles);
    }
    // Write hit with sharer invalidations plus one forced eviction:
    // both pay an invalidation round trip.
    {
        OutcomeFixture f(8);
        f.out->hit = true;
        f.out->hadSharerInvalidations = true;
        f.ctx.sharerTargets(*f.out).set(3);
        EvictedEntry &evicted = f.ctx.appendEviction(*f.out);
        evicted.targets.set(5);
        EXPECT_EQ(model.accessLatency(req, *f.out, f.ctx, 0),
                  p.directoryCycles + p.forwardCycles +
                      2 * p.invalidationCycles);
    }
}

TEST(MeshCostModel, GeometryFollowsTheConfig)
{
    CmpConfig config = CmpConfig::paperConfig(CmpConfigKind::SharedL2, 16);
    const MeshCostModel mesh16(config);
    EXPECT_EQ(mesh16.meshWidth(), 4u);
    EXPECT_EQ(mesh16.hops(0, 15), 6u);  // (0,0) -> (3,3)
    EXPECT_EQ(mesh16.hops(0, 0), 0u);
    EXPECT_EQ(mesh16.hops(5, 6), 1u);
    EXPECT_EQ(mesh16.hops(1, 4), 2u);   // (1,0) -> (0,1)
    // Slice interleaving wraps onto the 16 tiles.
    EXPECT_EQ(mesh16.tileOfSlice(0), 0u);
    EXPECT_EQ(mesh16.tileOfSlice(17), 1u);

    const MeshCostModel mesh4(
        CmpConfig::paperConfig(CmpConfigKind::SharedL2, 4));
    EXPECT_EQ(mesh4.meshWidth(), 2u);

    // Non-square core counts round the side up.
    CmpConfig five = CmpConfig::paperConfig(CmpConfigKind::SharedL2, 4);
    five.numCores = 5;
    EXPECT_EQ(MeshCostModel(five).meshWidth(), 3u);

    CmpConfig zero = config;
    zero.numCores = 0;
    EXPECT_THROW(MeshCostModel{zero}, std::invalid_argument);
}

TEST(MeshCostModel, DistanceAndFanOutShapeTheLatency)
{
    // 4-core Shared-L2 mesh (2x2): every core has 2 tracked caches
    // (instruction + data), so cache ids 0..7 map to tiles 0..3.
    const CmpConfig config =
        CmpConfig::paperConfig(CmpConfigKind::SharedL2, 4);
    ASSERT_EQ(config.cachesPerCore(), 2u);
    const CostModelParams p;
    const MeshCostModel model(config);
    const std::size_t caches = config.numCores * config.cachesPerCore();

    // Hit from the home tile itself: no hops.
    {
        OutcomeFixture f(caches);
        f.out->hit = true;
        const DirRequest local{0x1, /*cache=*/0, false};
        EXPECT_EQ(model.accessLatency(local, *f.out, f.ctx, 0),
                  p.directoryCycles + p.forwardCycles);
    }
    // Hit from the diagonal tile (tile 3, 2 hops on the 2x2 mesh):
    // request + response both pay the distance.
    {
        OutcomeFixture f(caches);
        f.out->hit = true;
        const DirRequest remote{0x1, /*cache=*/6, false}; // core 3
        EXPECT_EQ(model.accessLatency(remote, *f.out, f.ctx, 0),
                  p.directoryCycles + 2 * p.hopCycles * 2 +
                      p.forwardCycles);
    }
    // Write hit invalidating sharers on tiles 1 and 3 from home 0: the
    // critical path is the farthest (2 hops), not the sum.
    {
        OutcomeFixture f(caches);
        f.out->hit = true;
        f.out->hadSharerInvalidations = true;
        DynamicBitset &targets = f.ctx.sharerTargets(*f.out);
        targets.set(2); // core 1, tile 1: 1 hop from tile 0
        targets.set(7); // core 3, tile 3: 2 hops from tile 0
        const DirRequest local{0x1, /*cache=*/0, true};
        EXPECT_EQ(model.accessLatency(local, *f.out, f.ctx, 0),
                  p.directoryCycles + p.forwardCycles +
                      p.invalidationCycles + 2 * p.hopCycles * 2);
    }
    // The requester is excluded from *sharer* invalidations (the apply
    // phase never invalidates the requesting cache)...
    {
        OutcomeFixture f(caches);
        f.out->hit = true;
        f.out->hadSharerInvalidations = true;
        f.ctx.sharerTargets(*f.out).set(6); // the requester itself
        const DirRequest remote{0x1, /*cache=*/6, true};
        EXPECT_EQ(model.accessLatency(remote, *f.out, f.ctx, 0),
                  p.directoryCycles + 2 * p.hopCycles * 2 +
                      p.forwardCycles);
    }
    // ...but *is* a target of forced evictions (a different block).
    {
        OutcomeFixture f(caches);
        f.out->inserted = true;
        f.out->attempts = 1;
        EvictedEntry &evicted = f.ctx.appendEviction(*f.out);
        evicted.targets.set(0); // the requester's own cache, tile 0
        const DirRequest local{0x1, /*cache=*/0, false};
        EXPECT_EQ(model.accessLatency(local, *f.out, f.ctx, 0),
                  p.directoryCycles + p.offChipCycles +
                      p.invalidationCycles);
    }
}

// --- experiment integration --------------------------------------------------

/** 4-core grid cell used by the integration tests. */
CmpConfig
smallConfig()
{
    CmpConfig config = CmpConfig::paperConfig(CmpConfigKind::SharedL2, 4);
    config.privateCache = CacheConfig{64, 2};
    config.directory = cuckooSliceParams(4, 64);
    return config;
}

WorkloadParams
smallWorkload()
{
    WorkloadParams wl;
    wl.name = "wl";
    wl.numCores = 4;
    wl.seed = 11;
    wl.codeBlocks = 128;
    wl.sharedBlocks = 512;
    wl.privateBlocksPerCore = 256;
    return wl;
}

TEST(CostModelExperiment, UntimedRunAllocatesNoHistogram)
{
    ExperimentOptions opts;
    opts.warmupAccesses = 5000;
    opts.measureAccesses = 20000;
    opts.occupancySampleEvery = 1000;
    const ExperimentResult result =
        runExperiment(smallConfig(), smallWorkload(), opts);
    EXPECT_TRUE(result.system.latency.empty());
    EXPECT_EQ(result.costModel, "");
    EXPECT_EQ(result.latencyP50, 0u);
    EXPECT_EQ(result.latencyP99, 0u);
    EXPECT_EQ(result.latencyP999, 0u);
}

TEST(CostModelExperiment, TimingNeverChangesBehaviouralCounters)
{
    ExperimentOptions opts;
    opts.warmupAccesses = 5000;
    opts.measureAccesses = 20000;
    opts.occupancySampleEvery = 1000;
    const ExperimentResult untimed =
        runExperiment(smallConfig(), smallWorkload(), opts);
    for (const char *model : {"fixed", "mesh"}) {
        opts.costModel = model;
        const ExperimentResult timed =
            runExperiment(smallConfig(), smallWorkload(), opts);
        EXPECT_EQ(timed.costModel, model);
        // One sample per directory access, all percentiles populated.
        EXPECT_EQ(timed.system.latency.count(),
                  timed.directory.lookups);
        EXPECT_GT(timed.latencyP50, 0u);
        EXPECT_GE(timed.latencyP99, timed.latencyP50);
        EXPECT_GE(timed.latencyP999, timed.latencyP99);
        // Behavioural counters are byte-identical to the untimed run:
        // timing never feeds back into the simulation.
        EXPECT_EQ(timed.system.cacheMisses, untimed.system.cacheMisses);
        EXPECT_EQ(timed.system.sharingInvalidations,
                  untimed.system.sharingInvalidations);
        EXPECT_EQ(timed.system.forcedInvalidations,
                  untimed.system.forcedInvalidations);
        EXPECT_EQ(timed.directory.insertions,
                  untimed.directory.insertions);
        EXPECT_EQ(timed.directory.forcedEvictions,
                  untimed.directory.forcedEvictions);
        EXPECT_EQ(timed.avgInsertionAttempts,
                  untimed.avgInsertionAttempts);
        EXPECT_EQ(timed.avgOccupancy, untimed.avgOccupancy);
    }
}

TEST(CostModelExperiment, PercentilesBitIdenticalAcrossJobsAndShards)
{
    // The canonical-order apply phase does the accounting, so latency
    // histograms inherit the --jobs x --shards determinism contract.
    SweepSpec spec;
    spec.config("Cuckoo 4x64", smallConfig());
    spec.workload("wl", smallWorkload());
    ExperimentOptions opts;
    opts.warmupAccesses = 5000;
    opts.measureAccesses = 20000;
    opts.occupancySampleEvery = 1000;
    opts.costModel = "mesh";
    spec.options("mesh", opts);

    const std::vector<SweepRecord> baseline =
        SweepRunner(SweepOptions{1, ""}).run(spec);
    ASSERT_EQ(baseline.size(), 1u);
    const LatencyHistogram &expect = baseline[0].result.system.latency;
    ASSERT_FALSE(expect.empty());

    for (const unsigned shards : {2u, 4u}) {
        for (const unsigned jobs : {1u, 4u}) {
            SweepSpec sharded;
            sharded.config("Cuckoo 4x64", smallConfig());
            sharded.workload("wl", smallWorkload());
            ExperimentOptions sharded_opts = opts;
            sharded_opts.shards = shards;
            sharded.options("mesh", sharded_opts);
            const std::vector<SweepRecord> records =
                SweepRunner(SweepOptions{jobs, ""}).run(sharded);
            ASSERT_EQ(records.size(), 1u);
            const ExperimentResult &result = records[0].result;
            EXPECT_TRUE(result.system.latency == expect)
                << "shards " << shards << " jobs " << jobs;
            EXPECT_EQ(result.latencyP50, baseline[0].result.latencyP50);
            EXPECT_EQ(result.latencyP99, baseline[0].result.latencyP99);
            EXPECT_EQ(result.latencyP999,
                      baseline[0].result.latencyP999);
        }
    }
}

TEST(CostModelExperiment, IntervalWindowsSumToWholeRunHistogram)
{
    ExperimentOptions opts;
    opts.warmupAccesses = 5000;
    opts.measureAccesses = 20000;
    opts.occupancySampleEvery = 1000;
    opts.intervalAccesses = 3000; // deliberately not a divisor
    opts.costModel = "fixed";
    const ExperimentResult result =
        runExperiment(smallConfig(), smallWorkload(), opts);
    ASSERT_FALSE(result.system.latency.empty());
    ASSERT_FALSE(result.intervals.empty());

    LatencyHistogram window_sum;
    for (const IntervalRecord &window : result.intervals.windows)
        window_sum.merge(window.latency);
    EXPECT_TRUE(window_sum == result.system.latency);
}

// --- golden pins -------------------------------------------------------------

/** Replay one committed fixture on the golden CMP under @p model. */
LatencyHistogram
replayTimed(const std::string &trace, const std::string &organization,
            const std::string &model)
{
    const std::string path =
        std::string(CDIR_TEST_DATA_DIR) + "/" + trace;
    const CmpConfig config = test::goldenReplayConfig(
        organization, CmpConfigKind::SharedL2);
    CmpSystem system(config);
    const std::unique_ptr<CostModel> costs =
        makeCostModel(model, config);
    system.setCostModel(costs.get());
    const auto reader = makeTraceReader(
        path, TraceReadOptions{config.numCores, true});
    system.run(*reader, ~std::uint64_t{0});
    return system.stats().latency;
}

TEST(CostModelGolden, PinnedPercentilesForMixedFixture)
{
    // Exact pins: the mixed.ctr fixture replayed through the selected
    // Cuckoo organization on the golden 4-core CMP. Any change to the
    // cost-model arithmetic, the histogram geometry, or the replay
    // semantics moves these numbers. The fixture thrashes the
    // under-provisioned directory by design, so the upper percentiles
    // sit at the attempt-bound chain (4 + 31*6 + 200 + 10 = 400 for
    // the fixed model) while p10/p25 still see hits and clean misses.
    const LatencyHistogram fixed =
        replayTimed("mixed.ctr", "Cuckoo", "fixed");
    ASSERT_EQ(fixed.count(), 3206u);
    EXPECT_EQ(fixed.percentile(100), 16u);  // hit: 4 + 12
    EXPECT_EQ(fixed.percentile(250), 204u); // clean miss: 4 + 200
    EXPECT_EQ(fixed.percentile(500), 400u);
    EXPECT_EQ(fixed.percentile(990), 400u);
    EXPECT_EQ(fixed.maxLatency(), 400u);

    const LatencyHistogram mesh =
        replayTimed("mixed.ctr", "Cuckoo", "mesh");
    ASSERT_EQ(mesh.count(), fixed.count());
    EXPECT_EQ(mesh.percentile(100), 22u);
    EXPECT_EQ(mesh.percentile(250), 208u);
    EXPECT_EQ(mesh.percentile(500), 400u);
    EXPECT_EQ(mesh.percentile(990), 424u);
    EXPECT_EQ(mesh.maxLatency(), 424u);
}

} // namespace
} // namespace cdir
