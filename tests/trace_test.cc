/**
 * @file
 * Tests for the trace record/replay pipeline: text/binary parsing and
 * round trips, format conversion, error reporting (line numbers,
 * out-of-range cores, truncated/corrupt binary streams), recording
 * through TraceRecorder, driving the CMP simulator from either reader,
 * and the sweep engine's trace workload axis.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "sim/cmp_system.hh"
#include "sim/sweep.hh"
#include "workload/trace.hh"

namespace cdir {
namespace {

std::string
tempPath(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

/** Deterministic mixed access stream exercising every op and core. */
std::vector<MemAccess>
sampleStream(std::size_t count, std::size_t cores = 8)
{
    std::vector<MemAccess> stream;
    stream.reserve(count);
    Rng rng(99);
    BlockAddr hot = 0x1000;
    for (std::size_t i = 0; i < count; ++i) {
        MemAccess a;
        a.core = static_cast<CoreId>(i % cores);
        // Mix small strides (delta-friendly) with far jumps.
        hot = rng.chance(0.8) ? hot + rng.below(64)
                              : (BlockAddr{rng.next()} >> 12);
        a.addr = hot;
        a.instruction = rng.chance(0.2);
        a.write = !a.instruction && rng.chance(0.3);
        stream.push_back(a);
    }
    return stream;
}

void
expectSameAccess(const MemAccess &a, const MemAccess &b, std::size_t i)
{
    EXPECT_EQ(a.core, b.core) << "record " << i;
    EXPECT_EQ(a.addr, b.addr) << "record " << i;
    EXPECT_EQ(a.write, b.write) << "record " << i;
    EXPECT_EQ(a.instruction, b.instruction) << "record " << i;
}

// --- text line format --------------------------------------------------------

TEST(TraceFormat, RoundTripsRecords)
{
    MemAccess a{3, 0xdeadbeef, true, false};
    MemAccess parsed;
    ASSERT_TRUE(parseTraceLine(formatTraceLine(a), parsed));
    EXPECT_EQ(parsed.core, 3u);
    EXPECT_EQ(parsed.addr, 0xdeadbeefull);
    EXPECT_TRUE(parsed.write);
    EXPECT_FALSE(parsed.instruction);
}

TEST(TraceFormat, InstructionMarker)
{
    MemAccess a{0, 0x10, false, true};
    const std::string line = formatTraceLine(a);
    EXPECT_EQ(line.back(), 'i');
    MemAccess parsed;
    ASSERT_TRUE(parseTraceLine(line, parsed));
    EXPECT_TRUE(parsed.instruction);
    EXPECT_FALSE(parsed.write);
}

TEST(TraceFormat, RejectsCommentsAndBlank)
{
    MemAccess parsed;
    std::string error;
    EXPECT_FALSE(parseTraceLine("# comment", parsed, &error));
    EXPECT_TRUE(error.empty()) << "comments are skippable, not errors";
    EXPECT_FALSE(parseTraceLine("", parsed, &error));
    EXPECT_TRUE(error.empty());
    EXPECT_FALSE(parseTraceLine("   ", parsed, &error));
    EXPECT_TRUE(error.empty());
}

TEST(TraceFormat, RejectsMalformedWithReason)
{
    MemAccess parsed;
    std::string error;
    EXPECT_FALSE(parseTraceLine("1 zzz r", parsed, &error));
    EXPECT_NE(error.find("block address"), std::string::npos) << error;
    EXPECT_FALSE(parseTraceLine("1 10", parsed, &error));
    EXPECT_FALSE(parseTraceLine("1 10 x", parsed, &error));
    EXPECT_NE(error.find("operation"), std::string::npos) << error;
    EXPECT_FALSE(parseTraceLine("1 10 rw", parsed, &error));
}

TEST(TraceFormat, RejectsCoreIdOverflowInsteadOfWrapping)
{
    // 2^32 would wrap to core 0 under a silent cast; it must fail.
    MemAccess parsed;
    std::string error;
    EXPECT_FALSE(parseTraceLine("4294967296 10 r", parsed, &error));
    EXPECT_NE(error.find("overflows"), std::string::npos) << error;
    // The maximum representable core id still parses.
    EXPECT_TRUE(parseTraceLine("4294967295 10 r", parsed));
    EXPECT_EQ(parsed.core, 4294967295u);
}

TEST(TraceFormat, RejectsOutOfRangeCore)
{
    MemAccess parsed;
    std::string error;
    EXPECT_TRUE(parseTraceLine("3 10 r", parsed, &error, 4));
    EXPECT_FALSE(parseTraceLine("4 10 r", parsed, &error, 4));
    EXPECT_NE(error.find("out of range"), std::string::npos) << error;
}

TEST(TraceFormat, ParsesHexAddresses)
{
    MemAccess parsed;
    ASSERT_TRUE(parseTraceLine("7 1f0a w", parsed));
    EXPECT_EQ(parsed.addr, 0x1f0aull);
    EXPECT_EQ(parsed.core, 7u);
    EXPECT_TRUE(parsed.write);
}

// --- text file I/O -----------------------------------------------------------

TEST(TextTraceFile, WriteThenReadBack)
{
    const std::string path = tempPath("cdir_trace_roundtrip.txt");
    {
        TextTraceWriter writer(path);
        writer.write({0, 0x100, false, false});
        writer.write({1, 0x200, true, false});
        writer.write({2, 0x300, false, true});
        EXPECT_EQ(writer.recordsWritten(), 3u);
    }
    TextTraceReader reader(path);
    ASSERT_FALSE(reader.exhausted());
    MemAccess a = reader.next();
    EXPECT_EQ(a.addr, 0x100u);
    a = reader.next();
    EXPECT_TRUE(a.write);
    a = reader.next();
    EXPECT_TRUE(a.instruction);
    EXPECT_TRUE(reader.exhausted());
    EXPECT_EQ(reader.recordsRead(), 3u);
    std::filesystem::remove(path);
}

TEST(TextTraceFile, SkipsCommentsReportsMalformedLineNumbers)
{
    const std::string path = tempPath("cdir_trace_dirty.txt");
    {
        std::ofstream out(path);
        out << "# header\n"
            << "0 10 r\n"
            << "garbage line\n"
            << "\n"
            << "1 20 w\n";
    }
    TextTraceReader reader(path);
    EXPECT_EQ(reader.next().addr, 0x10u);
    EXPECT_EQ(reader.next().addr, 0x20u);
    EXPECT_TRUE(reader.exhausted());
    EXPECT_EQ(reader.malformedRecords(), 1u);
    // The error names the file and the 1-based line of the bad record.
    EXPECT_NE(reader.lastError().find(path + ":3:"), std::string::npos)
        << reader.lastError();
    std::filesystem::remove(path);
}

TEST(TextTraceFile, StrictModeThrowsWithLineNumber)
{
    const std::string path = tempPath("cdir_trace_strict.txt");
    {
        std::ofstream out(path);
        out << "0 10 r\n"
            << "0 zzz r\n";
    }
    TraceReadOptions opts;
    opts.strict = true;
    try {
        TextTraceReader reader(path, opts);
        reader.next(); // line 2 is buffered lazily; drain to reach it
        FAIL() << "strict reader accepted a malformed line";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find(":2:"), std::string::npos)
            << e.what();
    }
    std::filesystem::remove(path);
}

TEST(TextTraceFile, OutOfRangeCoreIsRejectedNotWrapped)
{
    const std::string path = tempPath("cdir_trace_badcore.txt");
    {
        std::ofstream out(path);
        out << "0 10 r\n"
            << "9 20 r\n"  // out of range for a 4-core replay
            << "3 30 r\n";
    }
    TraceReadOptions opts;
    opts.maxCores = 4;
    TextTraceReader reader(path, opts);
    EXPECT_EQ(reader.next().addr, 0x10u);
    EXPECT_EQ(reader.next().addr, 0x30u);
    EXPECT_TRUE(reader.exhausted());
    EXPECT_EQ(reader.malformedRecords(), 1u);
    EXPECT_NE(reader.lastError().find("out of range"), std::string::npos)
        << reader.lastError();
    std::filesystem::remove(path);
}

TEST(TextTraceFile, MissingFileThrows)
{
    EXPECT_THROW(TextTraceReader("/nonexistent/path/trace.txt"),
                 std::runtime_error);
}

// --- binary file I/O ---------------------------------------------------------

TEST(BinaryTraceFile, WriteThenReadBack)
{
    const std::string path = tempPath("cdir_trace_roundtrip.ctr");
    const auto stream = sampleStream(4096);
    {
        BinaryTraceWriter writer(path);
        for (const MemAccess &a : stream)
            writer.write(a);
        EXPECT_EQ(writer.recordsWritten(), stream.size());
    }
    BinaryTraceReader reader(path);
    for (std::size_t i = 0; i < stream.size(); ++i) {
        ASSERT_FALSE(reader.exhausted()) << "record " << i;
        expectSameAccess(reader.next(), stream[i], i);
    }
    EXPECT_TRUE(reader.exhausted());
    EXPECT_EQ(reader.recordsRead(), stream.size());
    std::filesystem::remove(path);
}

TEST(BinaryTraceFile, DeltaCodingIsCompact)
{
    // The whole point of the binary format: local strides collapse into
    // a few bytes per record, far below the text encoding.
    const std::string binary_path = tempPath("cdir_trace_compact.ctr");
    const std::string text_path = tempPath("cdir_trace_compact.txt");
    const auto stream = sampleStream(4096);
    {
        BinaryTraceWriter binary(binary_path);
        TextTraceWriter text(text_path);
        for (const MemAccess &a : stream) {
            binary.write(a);
            text.write(a);
        }
    }
    const auto binary_size = std::filesystem::file_size(binary_path);
    const auto text_size = std::filesystem::file_size(text_path);
    EXPECT_LT(binary_size, text_size / 2)
        << "binary " << binary_size << "B vs text " << text_size << "B";
    EXPECT_LE(double(binary_size) / double(stream.size()), 6.0)
        << "expected a few bytes per record";
    std::filesystem::remove(binary_path);
    std::filesystem::remove(text_path);
}

TEST(BinaryTraceFile, RejectsCorruptHeader)
{
    const std::string path = tempPath("cdir_trace_badmagic.ctr");
    {
        std::ofstream out(path, std::ios::binary);
        out << "NOPE0000";
    }
    EXPECT_THROW(BinaryTraceReader{path}, std::runtime_error);
    std::filesystem::remove(path);
}

TEST(BinaryTraceFile, RejectsShortHeader)
{
    const std::string path = tempPath("cdir_trace_shorthdr.ctr");
    {
        std::ofstream out(path, std::ios::binary);
        out << "CDT"; // EOF inside the magic
    }
    EXPECT_THROW(BinaryTraceReader{path}, std::runtime_error);
    std::filesystem::remove(path);
}

TEST(BinaryTraceFile, RejectsUnsupportedVersion)
{
    const std::string path = tempPath("cdir_trace_badver.ctr");
    {
        std::ofstream out(path, std::ios::binary);
        const char header[8] = {'C', 'D', 'T', 'R', 99, 0, 0, 0};
        out.write(header, sizeof header);
    }
    EXPECT_THROW(BinaryTraceReader{path}, std::runtime_error);
    std::filesystem::remove(path);
}

TEST(BinaryTraceFile, RejectsTruncatedRecord)
{
    const std::string full = tempPath("cdir_trace_full.ctr");
    {
        BinaryTraceWriter writer(full);
        for (const MemAccess &a : sampleStream(64))
            writer.write(a);
    }
    // Chop the last byte off: the final record loses part of a varint.
    const std::string truncated = tempPath("cdir_trace_truncated.ctr");
    {
        std::ifstream in(full, std::ios::binary);
        std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
        ASSERT_GT(bytes.size(), 9u);
        std::ofstream out(truncated, std::ios::binary);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() - 1));
    }
    BinaryTraceReader reader(truncated);
    EXPECT_THROW(
        {
            while (!reader.exhausted())
                reader.next();
        },
        std::runtime_error);
    EXPECT_NE(reader.lastError().find("truncated"), std::string::npos)
        << reader.lastError();
    std::filesystem::remove(full);
    std::filesystem::remove(truncated);
}

TEST(BinaryTraceFile, RejectsNonCanonicalVarint)
{
    // A 10-byte varint whose final byte carries more than bit 63 would
    // silently lose value bits; the reader must call it corruption.
    const std::string path = tempPath("cdir_trace_noncanon.ctr");
    {
        std::ofstream out(path, std::ios::binary);
        const char header[8] = {'C', 'D', 'T', 'R', 1, 0, 0, 0};
        out.write(header, sizeof header);
        const unsigned char varint[10] = {0xff, 0xff, 0xff, 0xff, 0xff,
                                          0xff, 0xff, 0xff, 0xff, 0x7f};
        out.write(reinterpret_cast<const char *>(varint), sizeof varint);
    }
    try {
        BinaryTraceReader reader(path); // constructor buffers record 1
        FAIL() << "non-canonical varint was accepted";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("non-canonical"),
                  std::string::npos)
            << e.what();
    }
    std::filesystem::remove(path);
}

TEST(BinaryTraceFile, StrictModeRejectsOutOfRangeCore)
{
    const std::string path = tempPath("cdir_trace_bincore.ctr");
    {
        BinaryTraceWriter writer(path);
        writer.write({1, 0x10, false, false});
        writer.write({9, 0x20, false, false});
    }
    TraceReadOptions tolerant;
    tolerant.maxCores = 4;
    BinaryTraceReader skipper(path, tolerant);
    EXPECT_EQ(skipper.next().addr, 0x10u);
    EXPECT_TRUE(skipper.exhausted());
    EXPECT_EQ(skipper.malformedRecords(), 1u);

    TraceReadOptions strict = tolerant;
    strict.strict = true;
    EXPECT_THROW(
        {
            BinaryTraceReader reader(path, strict);
            while (!reader.exhausted())
                reader.next();
        },
        std::runtime_error);
    std::filesystem::remove(path);
}

// --- format sniffing and conversion ------------------------------------------

TEST(TraceConvert, SniffsFormats)
{
    const std::string text_path = tempPath("cdir_sniff.txt");
    const std::string binary_path = tempPath("cdir_sniff.ctr");
    {
        TextTraceWriter text(text_path);
        text.write({0, 0x10, false, false});
        BinaryTraceWriter binary(binary_path);
        binary.write({0, 0x10, false, false});
    }
    EXPECT_FALSE(traceFileIsBinary(text_path));
    EXPECT_TRUE(traceFileIsBinary(binary_path));
    EXPECT_EQ(makeTraceReader(text_path)->next().addr, 0x10u);
    EXPECT_EQ(makeTraceReader(binary_path)->next().addr, 0x10u);
    std::filesystem::remove(text_path);
    std::filesystem::remove(binary_path);
}

TEST(TraceConvert, TextBinaryTextIsLossless)
{
    const auto stream = sampleStream(2048);
    const std::string text1 = tempPath("cdir_conv1.txt");
    const std::string binary = tempPath("cdir_conv2.ctr");
    const std::string text2 = tempPath("cdir_conv3.txt");
    {
        TextTraceWriter writer(text1);
        for (const MemAccess &a : stream)
            writer.write(a);
    }
    auto convert = [](const std::string &from, const std::string &to,
                      bool to_binary) {
        const auto reader = makeTraceReader(from);
        const auto sink = makeTraceSink(to, to_binary);
        while (!reader->exhausted())
            sink->write(reader->next());
        sink->close();
    };
    convert(text1, binary, true);
    convert(binary, text2, false);

    const auto a = makeTraceReader(text1);
    const auto b = makeTraceReader(text2);
    for (std::size_t i = 0; i < stream.size(); ++i) {
        ASSERT_FALSE(a->exhausted());
        ASSERT_FALSE(b->exhausted());
        expectSameAccess(a->next(), b->next(), i);
    }
    EXPECT_TRUE(a->exhausted());
    EXPECT_TRUE(b->exhausted());
    std::filesystem::remove(text1);
    std::filesystem::remove(binary);
    std::filesystem::remove(text2);
}

// --- recording ---------------------------------------------------------------

TEST(TraceRecorderTest, TeesEveryDeliveredAccess)
{
    WorkloadParams params;
    params.numCores = 4;
    params.seed = 3;
    const std::string path = tempPath("cdir_recorder.ctr");

    std::vector<MemAccess> delivered;
    {
        SyntheticSource source(params);
        const auto sink = makeTraceSink(path, true);
        TraceRecorder recorder(source, *sink);
        EXPECT_FALSE(recorder.exhausted());
        for (int i = 0; i < 5000; ++i)
            delivered.push_back(recorder.next());
        sink->close();
        EXPECT_EQ(sink->recordsWritten(), delivered.size());
    }
    const auto reader = makeTraceReader(path);
    for (std::size_t i = 0; i < delivered.size(); ++i)
        expectSameAccess(reader->next(), delivered[i], i);
    EXPECT_TRUE(reader->exhausted());
    std::filesystem::remove(path);
}

// --- replay through the simulator --------------------------------------------

WorkloadParams
tinyWorkload()
{
    WorkloadParams params;
    params.numCores = 4;
    params.codeBlocks = 32;
    params.sharedBlocks = 64;
    params.privateBlocksPerCore = 64;
    params.seed = 21;
    return params;
}

CmpConfig
tinyConfig()
{
    CmpConfig cfg;
    cfg.numCores = 4;
    cfg.numSlices = 4;
    cfg.privateCache = CacheConfig{32, 2};
    cfg.directory.organization = "Cuckoo";
    cfg.directory.ways = 4;
    cfg.directory.sets = 32;
    return cfg;
}

TEST(TraceReplay, BothFormatsDriveSimulatorIdenticallyToGenerator)
{
    // Record a synthetic stream in both formats, then replay each: the
    // systems must land in exactly the same statistical state.
    const WorkloadParams params = tinyWorkload();
    const std::string text_path = tempPath("cdir_trace_replay.txt");
    const std::string binary_path = tempPath("cdir_trace_replay.ctr");
    {
        SyntheticSource source(params);
        const auto text_sink = makeTraceSink(text_path, false);
        const auto binary_sink = makeTraceSink(binary_path, true);
        TraceRecorder text_tee(source, *text_sink);
        TraceRecorder both(text_tee, *binary_sink);
        for (int i = 0; i < 20000; ++i)
            both.next();
    }

    const CmpConfig cfg = tinyConfig();
    CmpSystem direct(cfg);
    SyntheticWorkload gen(params);
    direct.run(gen, 20000);

    for (const std::string &path : {text_path, binary_path}) {
        CmpSystem replayed(cfg);
        const auto reader =
            makeTraceReader(path, TraceReadOptions{cfg.numCores, true});
        const std::uint64_t executed =
            replayed.run(*reader, 1u << 30);
        EXPECT_EQ(executed, 20000u) << path;

        EXPECT_EQ(direct.stats().cacheMisses,
                  replayed.stats().cacheMisses)
            << path;
        EXPECT_EQ(direct.aggregateDirectoryStats().insertions,
                  replayed.aggregateDirectoryStats().insertions)
            << path;
        EXPECT_EQ(direct.aggregateDirectoryStats().forcedEvictions,
                  replayed.aggregateDirectoryStats().forcedEvictions)
            << path;
        EXPECT_DOUBLE_EQ(direct.currentOccupancy(),
                         replayed.currentOccupancy())
            << path;
    }
    std::filesystem::remove(text_path);
    std::filesystem::remove(binary_path);
}

TEST(TraceReplay, ExperimentOverTraceMatchesLiveSyntheticRun)
{
    // The acceptance criterion behind `trace_tool record` + `replay`:
    // a recorded trace driven through runExperiment must be
    // bit-identical to the live synthetic experiment, because the
    // recording captures the exact access stream the generator feeds
    // the measured system.
    const WorkloadParams params = tinyWorkload();
    ExperimentOptions options;
    options.warmupAccesses = 8000;
    options.measureAccesses = 8000;
    options.occupancySampleEvery = 500;

    const std::string path = tempPath("cdir_trace_experiment.ctr");
    {
        SyntheticSource source(params);
        const auto sink = makeTraceSink(path, true);
        TraceRecorder recorder(source, *sink);
        for (std::uint64_t i = 0;
             i < options.warmupAccesses + options.measureAccesses; ++i)
            recorder.next();
    }

    const CmpConfig cfg = tinyConfig();
    const ExperimentResult live = runExperiment(cfg, params, options);
    const ExperimentResult replayed =
        runExperiment(cfg, traceWorkloadParams(path), options);

    EXPECT_EQ(live.directory.insertions, replayed.directory.insertions);
    EXPECT_EQ(live.directory.forcedEvictions,
              replayed.directory.forcedEvictions);
    EXPECT_EQ(live.directory.hits, replayed.directory.hits);
    EXPECT_EQ(live.system.cacheMisses, replayed.system.cacheMisses);
    EXPECT_DOUBLE_EQ(live.avgOccupancy, replayed.avgOccupancy);
    EXPECT_DOUBLE_EQ(live.avgInsertionAttempts,
                     replayed.avgInsertionAttempts);
    std::filesystem::remove(path);
}

TEST(TraceSweepAxis, TraceCellsAreBitIdenticalAtAnyJobCount)
{
    // The sweep engine's trace axis: every cell opens an independent
    // reader, so a grid over one trace file is deterministic across
    // worker counts.
    const std::string path = tempPath("cdir_trace_sweep.ctr");
    {
        SyntheticSource source(tinyWorkload());
        const auto sink = makeTraceSink(path, true);
        TraceRecorder recorder(source, *sink);
        for (int i = 0; i < 16000; ++i)
            recorder.next();
    }

    ExperimentOptions options;
    options.warmupAccesses = 4000;
    options.measureAccesses = 4000;

    SweepSpec spec;
    spec.options("", options);
    appendTraceWorkloads(spec, path);
    ASSERT_EQ(spec.workloads().size(), 1u);
    for (const char *org : {"Cuckoo", "Sparse", "Skewed", "Elbow"}) {
        CmpConfig cfg = tinyConfig();
        cfg.directory.organization = org;
        cfg.directory.ways = org == std::string("Sparse") ? 8 : 4;
        spec.config(org, cfg);
    }

    const auto serial = SweepRunner(SweepOptions{1, ""}).run(spec);
    const auto parallel = SweepRunner(SweepOptions{4, ""}).run(spec);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].configLabel, parallel[i].configLabel);
        EXPECT_EQ(serial[i].result.directory.insertions,
                  parallel[i].result.directory.insertions)
            << serial[i].configLabel;
        EXPECT_EQ(serial[i].result.directory.forcedEvictions,
                  parallel[i].result.directory.forcedEvictions)
            << serial[i].configLabel;
        EXPECT_DOUBLE_EQ(serial[i].result.avgOccupancy,
                         parallel[i].result.avgOccupancy)
            << serial[i].configLabel;
    }
    std::filesystem::remove(path);
}

TEST(TraceSweepAxis, FailingCellsAreDroppedNotFatal)
{
    // A trace recorded on more cores than the grid's CMP makes the
    // cell's strict reader throw; the sweep must report and drop that
    // cell instead of propagating the exception out of run().
    const std::string path = tempPath("cdir_trace_too_many_cores.ctr");
    {
        WorkloadParams params = tinyWorkload();
        params.numCores = 8; // grid CMP below has 4
        SyntheticSource source(params);
        const auto sink = makeTraceSink(path, true);
        TraceRecorder recorder(source, *sink);
        for (int i = 0; i < 2000; ++i)
            recorder.next();
        sink->close();
    }
    SweepSpec spec;
    ExperimentOptions options;
    options.warmupAccesses = 500;
    options.measureAccesses = 500;
    spec.options("", options);
    appendTraceWorkloads(spec, path);
    spec.config("tiny", tinyConfig());

    const auto records = SweepRunner(SweepOptions{2, ""}).run(spec);
    EXPECT_TRUE(records.empty());
    std::filesystem::remove(path);
}

TEST(TraceSweepAxis, CollidingStemsGetFilenameLabels)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "cdir_trace_stem_collision";
    fs::create_directories(dir);
    {
        TextTraceWriter a((dir / "oltp.trace").string());
        a.write({0, 0x10, false, false});
        BinaryTraceWriter b((dir / "oltp.ctr").string());
        b.write({0, 0x10, false, false});
        TextTraceWriter c((dir / "web.trace").string());
        c.write({0, 0x20, false, false});
    }
    SweepSpec spec;
    appendTraceWorkloads(spec, dir.string());
    ASSERT_EQ(spec.workloads().size(), 3u);
    // Sorted file order; the colliding stems keep their extensions so
    // labels stay unique, the lone stem stays short.
    EXPECT_EQ(spec.workloads()[0].label, "oltp.ctr");
    EXPECT_EQ(spec.workloads()[1].label, "oltp.trace");
    EXPECT_EQ(spec.workloads()[2].label, "web");
    fs::remove_all(dir);
}

TEST(TraceWorkloadParamsTest, NamesCellAfterFileStem)
{
    const WorkloadParams params =
        traceWorkloadParams("/data/traces/oltp_like.ctr");
    EXPECT_EQ(params.name, "oltp_like");
    EXPECT_EQ(params.tracePath, "/data/traces/oltp_like.ctr");
}

TEST(ListTraceFilesTest, SingleFileAndSortedDirectory)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "cdir_trace_corpus";
    fs::create_directories(dir);
    for (const char *name : {"b.ctr", "a.ctr", "c.trace"}) {
        TextTraceWriter writer((dir / name).string());
        writer.write({0, 0x10, false, false});
    }
    // Stray non-trace files in a corpus must not poison the sweep axis.
    {
        std::ofstream readme(dir / "README.md");
        readme << "# corpus notes\nThese traces were captured on ...\n";
        std::ofstream sums(dir / "SHA256SUMS");
        sums << "deadbeef  a.ctr\n";
    }

    const auto single = listTraceFiles((dir / "a.ctr").string());
    ASSERT_EQ(single.size(), 1u);

    const auto all = listTraceFiles(dir.string());
    ASSERT_EQ(all.size(), 3u);
    EXPECT_TRUE(all[0].ends_with("a.ctr"));
    EXPECT_TRUE(all[1].ends_with("b.ctr"));
    EXPECT_TRUE(all[2].ends_with("c.trace"));

    EXPECT_THROW(listTraceFiles("/nonexistent/corpus"),
                 std::runtime_error);
    fs::remove_all(dir);
}

TEST(SyntheticSourceTest, WrapsGenerator)
{
    WorkloadParams params;
    params.numCores = 2;
    SyntheticSource source(params);
    EXPECT_FALSE(source.exhausted());
    const MemAccess a = source.next();
    EXPECT_LT(a.core, 2u);
}

// --- ChampSim-style external text front-end ----------------------------------

TEST(ChampSimFormat, ParsesAddressFirstLines)
{
    MemAccess parsed;
    ASSERT_TRUE(parseChampSimLine("1a2b 3 w", parsed));
    EXPECT_EQ(parsed.addr, 0x1a2bull);
    EXPECT_EQ(parsed.core, 3u);
    EXPECT_TRUE(parsed.write);
    EXPECT_FALSE(parsed.instruction);

    // 0x prefixes (the common external form) are accepted.
    ASSERT_TRUE(parseChampSimLine("0xdeadbeef 0 i", parsed));
    EXPECT_EQ(parsed.addr, 0xdeadbeefull);
    EXPECT_TRUE(parsed.instruction);

    // Comments and blanks skip without error.
    std::string error = "sentinel";
    EXPECT_FALSE(parseChampSimLine("# a comment", parsed, &error));
    EXPECT_TRUE(error.empty());
    EXPECT_FALSE(parseChampSimLine("   ", parsed, &error));
    EXPECT_TRUE(error.empty());
}

TEST(ChampSimFormat, RejectsMalformedLines)
{
    MemAccess parsed;
    std::string error;
    EXPECT_FALSE(parseChampSimLine("1a2b 3", parsed, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(parseChampSimLine("1a2b 3 x", parsed, &error));
    EXPECT_NE(error.find("bad operation"), std::string::npos);
    EXPECT_FALSE(parseChampSimLine("zzz 3 r", parsed, &error));
    EXPECT_NE(error.find("bad block address"), std::string::npos);
    EXPECT_FALSE(parseChampSimLine("10 6 r", parsed, &error, 4));
    EXPECT_NE(error.find("out of range"), std::string::npos);
    // Strict import: an unreduced capture with extra columns (latency,
    // PC) must error, never be silently truncated to the first three.
    EXPECT_FALSE(parseChampSimLine("10 2 r 12345", parsed, &error));
    EXPECT_NE(error.find("trailing field"), std::string::npos);
    // ...but an end-of-line comment is fine.
    EXPECT_TRUE(parseChampSimLine("10 2 r # warmup", parsed, &error));
}

TEST(ChampSimReader, ReadsExternalTracesWithLineNumberedErrors)
{
    const std::string path = tempPath("cdir_champsim.txt");
    {
        std::ofstream out(path);
        out << "# external capture\n"
               "10 0 r\n"
               "garbage line\n"
               "0x20 1 w\n"
               "30 2 i\n";
    }

    // Tolerant: the malformed line is skipped, counted, and its error
    // carries the line number.
    ChampSimTraceReader tolerant(path);
    std::vector<MemAccess> records;
    while (!tolerant.exhausted())
        records.push_back(tolerant.next());
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].addr, 0x10ull);
    EXPECT_EQ(records[1].core, 1u);
    EXPECT_TRUE(records[2].instruction);
    EXPECT_EQ(tolerant.malformedRecords(), 1u);
    EXPECT_NE(tolerant.lastError().find(":3:"), std::string::npos)
        << tolerant.lastError();

    // Strict (what trace_tool convert uses): the malformed line aborts
    // with its line number.
    try {
        ChampSimTraceReader strict(path, TraceReadOptions{0, true});
        while (!strict.exhausted())
            strict.next();
        FAIL() << "strict reader accepted a malformed line";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find(":3:"), std::string::npos)
            << e.what();
    }
    std::filesystem::remove(path);
}

TEST(ChampSimReader, ConvertsLosslesslyIntoNativeFormats)
{
    const std::string in_path = tempPath("cdir_champsim_in.txt");
    const std::vector<MemAccess> stream = sampleStream(500);
    {
        std::ofstream out(in_path);
        for (const MemAccess &a : stream) {
            char buf[64];
            std::snprintf(buf, sizeof buf, "%llx %u %c",
                          static_cast<unsigned long long>(a.addr), a.core,
                          a.instruction ? 'i' : (a.write ? 'w' : 'r'));
            out << buf << '\n';
        }
    }

    // The trace_tool convert pipeline: ChampSim text in, CDTR binary
    // out, record for record.
    const std::string out_path = tempPath("cdir_champsim_out.ctr");
    {
        ChampSimTraceReader reader(in_path, TraceReadOptions{0, true});
        BinaryTraceWriter writer(out_path);
        while (!reader.exhausted())
            writer.write(reader.next());
        writer.close();
        EXPECT_EQ(writer.recordsWritten(), stream.size());
    }
    BinaryTraceReader replay(out_path);
    for (std::size_t i = 0; i < stream.size(); ++i) {
        ASSERT_FALSE(replay.exhausted());
        expectSameAccess(stream[i], replay.next(), i);
    }
    EXPECT_TRUE(replay.exhausted());
    std::filesystem::remove(in_path);
    std::filesystem::remove(out_path);
}

} // namespace
} // namespace cdir
