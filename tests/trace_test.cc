/**
 * @file
 * Tests for trace parsing/formatting, file round-trips, and driving the
 * CMP simulator from a TraceReader.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "sim/cmp_system.hh"
#include "workload/trace.hh"

namespace cdir {
namespace {

std::string
tempPath(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

TEST(TraceFormat, RoundTripsRecords)
{
    MemAccess a{3, 0xdeadbeef, true, false};
    MemAccess parsed;
    ASSERT_TRUE(parseTraceLine(formatTraceLine(a), parsed));
    EXPECT_EQ(parsed.core, 3u);
    EXPECT_EQ(parsed.addr, 0xdeadbeefull);
    EXPECT_TRUE(parsed.write);
    EXPECT_FALSE(parsed.instruction);
}

TEST(TraceFormat, InstructionMarker)
{
    MemAccess a{0, 0x10, false, true};
    const std::string line = formatTraceLine(a);
    EXPECT_EQ(line.back(), 'i');
    MemAccess parsed;
    ASSERT_TRUE(parseTraceLine(line, parsed));
    EXPECT_TRUE(parsed.instruction);
    EXPECT_FALSE(parsed.write);
}

TEST(TraceFormat, RejectsCommentsAndBlank)
{
    MemAccess parsed;
    EXPECT_FALSE(parseTraceLine("# comment", parsed));
    EXPECT_FALSE(parseTraceLine("", parsed));
    EXPECT_FALSE(parseTraceLine("   ", parsed));
}

TEST(TraceFormat, RejectsMalformed)
{
    MemAccess parsed;
    EXPECT_FALSE(parseTraceLine("1 zzz r", parsed));
    EXPECT_FALSE(parseTraceLine("1 10", parsed));
    EXPECT_FALSE(parseTraceLine("1 10 x", parsed));
    EXPECT_FALSE(parseTraceLine("1 10 rw", parsed));
}

TEST(TraceFormat, ParsesHexAddresses)
{
    MemAccess parsed;
    ASSERT_TRUE(parseTraceLine("7 1f0a w", parsed));
    EXPECT_EQ(parsed.addr, 0x1f0aull);
    EXPECT_EQ(parsed.core, 7u);
    EXPECT_TRUE(parsed.write);
}

TEST(TraceFile, WriteThenReadBack)
{
    const std::string path = tempPath("cdir_trace_roundtrip.txt");
    {
        TraceWriter writer(path);
        writer.write({0, 0x100, false, false});
        writer.write({1, 0x200, true, false});
        writer.write({2, 0x300, false, true});
        EXPECT_EQ(writer.recordsWritten(), 3u);
    }
    TraceReader reader(path);
    ASSERT_FALSE(reader.exhausted());
    MemAccess a = reader.next();
    EXPECT_EQ(a.addr, 0x100u);
    a = reader.next();
    EXPECT_TRUE(a.write);
    a = reader.next();
    EXPECT_TRUE(a.instruction);
    EXPECT_TRUE(reader.exhausted());
    EXPECT_EQ(reader.recordsRead(), 3u);
    std::filesystem::remove(path);
}

TEST(TraceFile, SkipsCommentsCountsMalformed)
{
    const std::string path = tempPath("cdir_trace_dirty.txt");
    {
        std::ofstream out(path);
        out << "# header\n"
            << "0 10 r\n"
            << "garbage line\n"
            << "\n"
            << "1 20 w\n";
    }
    TraceReader reader(path);
    EXPECT_EQ(reader.next().addr, 0x10u);
    EXPECT_EQ(reader.next().addr, 0x20u);
    EXPECT_TRUE(reader.exhausted());
    EXPECT_EQ(reader.malformedLines(), 1u);
    std::filesystem::remove(path);
}

TEST(TraceFile, MissingFileThrows)
{
    EXPECT_THROW(TraceReader("/nonexistent/path/trace.txt"),
                 std::runtime_error);
}

TEST(TraceReplay, DrivesSimulatorIdenticallyToGenerator)
{
    // Record a synthetic stream to a file, then replay it: the system
    // must land in exactly the same statistical state.
    WorkloadParams params;
    params.numCores = 4;
    params.codeBlocks = 32;
    params.sharedBlocks = 64;
    params.privateBlocksPerCore = 64;
    params.seed = 21;

    const std::string path = tempPath("cdir_trace_replay.txt");
    {
        SyntheticWorkload gen(params);
        TraceWriter writer(path);
        for (int i = 0; i < 20000; ++i)
            writer.write(gen.next());
    }

    CmpConfig cfg;
    cfg.numCores = 4;
    cfg.numSlices = 4;
    cfg.privateCache = CacheConfig{32, 2};
    cfg.directory.kind = DirectoryKind::Cuckoo;
    cfg.directory.ways = 4;
    cfg.directory.sets = 32;

    CmpSystem direct(cfg);
    SyntheticWorkload gen(params);
    direct.run(gen, 20000);

    CmpSystem replayed(cfg);
    TraceReader reader(path);
    const std::uint64_t executed = replayed.run(reader, 1u << 30);
    EXPECT_EQ(executed, 20000u);

    EXPECT_EQ(direct.stats().cacheMisses, replayed.stats().cacheMisses);
    EXPECT_EQ(direct.aggregateDirectoryStats().insertions,
              replayed.aggregateDirectoryStats().insertions);
    EXPECT_EQ(direct.aggregateDirectoryStats().forcedEvictions,
              replayed.aggregateDirectoryStats().forcedEvictions);
    EXPECT_DOUBLE_EQ(direct.currentOccupancy(),
                     replayed.currentOccupancy());
    std::filesystem::remove(path);
}

TEST(SyntheticSource, WrapsGenerator)
{
    WorkloadParams params;
    params.numCores = 2;
    SyntheticSource source(params);
    EXPECT_FALSE(source.exhausted());
    const MemAccess a = source.next();
    EXPECT_LT(a.core, 2u);
}

} // namespace
} // namespace cdir
