/**
 * @file
 * End-to-end integration tests asserting the paper's evaluation claims
 * at reduced scale, so `ctest` alone demonstrates the reproduction
 * without running the full bench harnesses:
 *
 *  - §5.1 (Fig. 7): 3-ary+ tables are conflict-free to 65% occupancy;
 *  - §5.2 (Figs. 8/9): Shared-L2 needs no over-provisioning, 1x Cuckoo
 *    runs clean, under-provisioning blows up;
 *  - §5.3 (Figs. 10/11): attempts < 2 on average, geometric tail;
 *  - §5.4 (Fig. 12): organization ordering at paper sizings;
 *  - §5.6 / Fig. 13: headline energy/area ratios.
 *
 * The reduced-scale CMP keeps every structural ratio of Table 1 (16
 * cores, 16 slices, same provisioning factors) but shrinks the caches
 * 8x so runs take milliseconds.
 */

#include <gtest/gtest.h>

#include "model/directory_model.hh"
#include "sim/experiment.hh"

namespace cdir {
namespace {

/** Table 1 scaled down 8x (same core/slice counts and ratios). */
CmpConfig
scaledConfig(CmpConfigKind kind)
{
    CmpConfig cfg = CmpConfig::paperConfig(kind);
    if (kind == CmpConfigKind::SharedL2)
        cfg.privateCache = CacheConfig{64, 2}; // 8KB L1s
    else
        cfg.privateCache = CacheConfig{128, 16}; // 128KB L2s
    return cfg;
}

/** Workload preset with footprints rescaled to the shrunken caches. */
WorkloadParams
scaledWorkload(PaperWorkload w, CmpConfigKind kind)
{
    WorkloadParams p =
        paperWorkloadParams(w, kind == CmpConfigKind::PrivateL2);
    p.codeBlocks = std::max<std::size_t>(p.codeBlocks / 8, 16);
    p.sharedBlocks = std::max<std::size_t>(p.sharedBlocks / 8, 16);
    p.privateBlocksPerCore =
        std::max<std::size_t>(p.privateBlocksPerCore / 8, 16);
    return p;
}

ExperimentResult
runScaled(CmpConfigKind kind, PaperWorkload w, const DirectoryParams &dir)
{
    CmpConfig cfg = scaledConfig(kind);
    cfg.directory = dir;
    ExperimentOptions opts;
    opts.warmupAccesses = 300'000;
    opts.measureAccesses = 300'000;
    opts.occupancySampleEvery = 5'000;
    return runExperiment(cfg, scaledWorkload(w, kind), opts);
}

/** Paper sizings divided by 8 (provisioning factors preserved). */
DirectoryParams
scaledCuckoo(CmpConfigKind kind)
{
    return kind == CmpConfigKind::SharedL2 ? cuckooSliceParams(4, 64)
                                           : cuckooSliceParams(3, 1024);
}

// --- §5.2: occupancy and provisioning -----------------------------------------

TEST(PaperClaims, SharedL2OccupancyStaysBelowCapacityWithoutOverProvisioning)
{
    // Fig. 8: sharing keeps the 1x directory comfortably below full.
    for (PaperWorkload w :
         {PaperWorkload::OltpDb2, PaperWorkload::WebApache,
          PaperWorkload::SciOcean}) {
        const auto res = runScaled(CmpConfigKind::SharedL2, w,
                                   scaledCuckoo(CmpConfigKind::SharedL2));
        EXPECT_LT(res.avgOccupancy, 0.70) << paperWorkloadName(w);
        EXPECT_GT(res.avgOccupancy, 0.20) << paperWorkloadName(w);
    }
}

TEST(PaperClaims, OceanIsNearlyAllPrivateBlocksInPrivateL2)
{
    // Fig. 8: ocean approaches 100% of the worst-case tracked blocks.
    const auto res = runScaled(CmpConfigKind::PrivateL2,
                               PaperWorkload::SciOcean,
                               scaledCuckoo(CmpConfigKind::PrivateL2));
    const double normalized = res.avgOccupancy * 1.5; // 1.5x provisioning
    EXPECT_GT(normalized, 0.90);
}

TEST(PaperClaims, SelectedSizingsRunWithoutForcedInvalidations)
{
    // Fig. 9/12: the selected 1x (Shared) and 1.5x (Private) Cuckoo
    // directories experience (near-)zero forced invalidations.
    for (CmpConfigKind kind :
         {CmpConfigKind::SharedL2, CmpConfigKind::PrivateL2}) {
        for (PaperWorkload w :
             {PaperWorkload::OltpOracle, PaperWorkload::SciOcean}) {
            const auto res = runScaled(kind, w, scaledCuckoo(kind));
            EXPECT_LT(res.forcedInvalidationRate, 0.001)
                << paperWorkloadName(w);
        }
    }
}

TEST(PaperClaims, UnderProvisioningExplodesAttemptsAndInvalidations)
{
    // Fig. 9: 3/8x capacity is catastrophically under-provisioned.
    const auto good = runScaled(CmpConfigKind::SharedL2,
                                PaperWorkload::OltpDb2,
                                cuckooSliceParams(4, 64)); // 1x
    const auto bad = runScaled(CmpConfigKind::SharedL2,
                               PaperWorkload::OltpDb2,
                               cuckooSliceParams(3, 32)); // 3/8x
    EXPECT_GT(bad.avgInsertionAttempts, 4 * good.avgInsertionAttempts);
    EXPECT_GT(bad.forcedInvalidationRate, 0.05);
    EXPECT_LT(good.forcedInvalidationRate, 0.001);
}

// --- §5.3: insertion attempts ----------------------------------------------------

TEST(PaperClaims, AverageAttemptsTypicallyUnderTwo)
{
    // Fig. 10.
    for (CmpConfigKind kind :
         {CmpConfigKind::SharedL2, CmpConfigKind::PrivateL2}) {
        const auto res =
            runScaled(kind, PaperWorkload::OltpOracle, scaledCuckoo(kind));
        EXPECT_LT(res.avgInsertionAttempts, 2.0);
        EXPECT_GE(res.avgInsertionAttempts, 1.0);
    }
}

TEST(PaperClaims, AttemptTailDecaysGeometricallyNoPeakAt32)
{
    // Fig. 11: each additional attempt is less likely; no loop peak.
    const auto res = runScaled(CmpConfigKind::PrivateL2,
                               PaperWorkload::SciOcean,
                               scaledCuckoo(CmpConfigKind::PrivateL2));
    const Histogram &h = res.attemptHistogram;
    ASSERT_GT(h.count(), 1000u);
    EXPECT_GT(h.fraction(1), 0.5);
    // Broad decay: mass in [2,4] > mass in [5,8] > mass in [9,16].
    auto mass = [&](std::size_t lo, std::size_t hi) {
        double m = 0;
        for (std::size_t a = lo; a <= hi; ++a)
            m += h.fraction(a);
        return m;
    };
    EXPECT_GT(mass(2, 4), mass(5, 8));
    EXPECT_GE(mass(5, 8), mass(9, 16));
    EXPECT_LT(h.fraction(32), 0.001);
}

// --- §5.4: organization comparison ------------------------------------------------

TEST(PaperClaims, Fig12OrderingOnServerWorkload)
{
    // Sparse 2x conflicts the most; Sparse 8x and Skewed 2x help; the
    // Cuckoo directory with the least capacity is near zero.
    const CmpConfigKind kind = CmpConfigKind::SharedL2;
    const PaperWorkload w = PaperWorkload::OltpDb2;
    const auto sparse2x = runScaled(kind, w, sparseSliceParams(8, 32));
    const auto sparse8x = runScaled(kind, w, sparseSliceParams(8, 128));
    const auto skewed2x = runScaled(kind, w, skewedSliceParams(4, 64));
    const auto cuckoo1x = runScaled(kind, w, cuckooSliceParams(4, 64));

    EXPECT_GT(sparse2x.forcedInvalidationRate,
              sparse8x.forcedInvalidationRate);
    EXPECT_GT(sparse2x.forcedInvalidationRate,
              skewed2x.forcedInvalidationRate);
    EXPECT_LE(cuckoo1x.forcedInvalidationRate,
              skewed2x.forcedInvalidationRate);
    EXPECT_LE(cuckoo1x.forcedInvalidationRate,
              sparse8x.forcedInvalidationRate);
    EXPECT_LT(cuckoo1x.forcedInvalidationRate, 0.0005);
}

// --- §5.6 / Fig. 13 headlines (analytical) ------------------------------------------

TEST(PaperClaims, HeadlineRatiosAt1024Cores)
{
    DirSystemParams p;
    p.numCores = 1024;
    p.cachesPerCore = 2;
    p.framesPerCache = 1024;
    p.cacheAssoc = 2;
    p.cuckooProvisioning = 1.0;
    p.cuckooWays = 4;

    const auto cuckoo = directoryCost(OrgModel::CuckooCoarse, p);
    const auto tagless = directoryCost(OrgModel::Tagless, p);
    const auto sparse = directoryCost(OrgModel::SparseCoarse, p);

    // "up to 80x more power-efficient than the Tagless directory"
    EXPECT_GT(tagless.energyPerOp / cuckoo.energyPerOp, 40.0);
    // "more than 7x area-efficiency over the ... Sparse design"
    EXPECT_GT(sparse.areaBitsPerCore / cuckoo.areaBitsPerCore, 7.0);
    // "bringing the area ... under 3% of the L2 area"
    EXPECT_LT(cuckoo.areaRelative, 0.03);
}

TEST(PaperClaims, CuckooEnergyAndAreaNearlyFlatTo1024Cores)
{
    auto at = [](std::size_t cores) {
        DirSystemParams p;
        p.numCores = cores;
        p.cachesPerCore = 2;
        p.framesPerCache = 1024;
        p.cacheAssoc = 2;
        p.cuckooProvisioning = 1.0;
        p.cuckooWays = 4;
        return directoryCost(OrgModel::CuckooCoarse, p);
    };
    const auto lo = at(16), hi = at(1024);
    EXPECT_LT(hi.energyPerOp / lo.energyPerOp, 1.5);
    EXPECT_LT(hi.areaBitsPerCore / lo.areaBitsPerCore, 1.5);
}

} // namespace
} // namespace cdir
