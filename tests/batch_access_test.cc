/**
 * @file
 * Batched access-protocol coverage:
 *
 *  - scalar access(request, ctx) (one request per context reset) and
 *    accessBatch() must produce bit-identical DirectoryStats for every
 *    registered organization over identical operation streams;
 *  - DirAccessResult snapshots must agree with the live context
 *    outcomes field by field;
 *  - CmpSystem with batchWindow > 1 must keep the directory-covers-
 *    caches inclusion invariant for every organization, and
 *    batchWindow == 1 must reproduce the per-reference access() path
 *    exactly;
 *  - steady-state directory churn through the context protocol must be
 *    allocation-free for every organization (the redesign's headline
 *    guarantee).
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/alloc_counter.hh"
#include "common/rng.hh"
#include "dir_test_util.hh"
#include "directory/registry.hh"
#include "sim/cmp_system.hh"

namespace cdir {
namespace {

constexpr std::size_t kCaches = 8;

/** Workable small parameters for any registered organization. */
DirectoryParams
paramsFor(const std::string &organization)
{
    DirectoryParams p;
    p.organization = organization;
    p.numCaches = kCaches;
    p.ways = 4;
    p.sets = 64;
    p.trackedCacheAssoc = 2;
    p.taglessBucketBits = 64;
    return p;
}

void
expectStatsEqual(const DirectoryStats &a, const DirectoryStats &b,
                 const std::string &label)
{
    EXPECT_EQ(a.lookups, b.lookups) << label;
    EXPECT_EQ(a.hits, b.hits) << label;
    EXPECT_EQ(a.insertions, b.insertions) << label;
    EXPECT_EQ(a.sharerAdds, b.sharerAdds) << label;
    EXPECT_EQ(a.writeUpgrades, b.writeUpgrades) << label;
    EXPECT_EQ(a.sharerRemovals, b.sharerRemovals) << label;
    EXPECT_EQ(a.entryFrees, b.entryFrees) << label;
    EXPECT_EQ(a.forcedEvictions, b.forcedEvictions) << label;
    EXPECT_EQ(a.forcedBlockInvalidations, b.forcedBlockInvalidations)
        << label;
    EXPECT_EQ(a.insertFailures, b.insertFailures) << label;
    EXPECT_EQ(a.insertionAttempts.count(), b.insertionAttempts.count())
        << label;
    EXPECT_DOUBLE_EQ(a.insertionAttempts.sum(), b.insertionAttempts.sum())
        << label;
    ASSERT_EQ(a.attemptHistogram.maxValue(), b.attemptHistogram.maxValue())
        << label;
    for (std::size_t v = 0; v <= a.attemptHistogram.maxValue(); ++v)
        EXPECT_EQ(a.attemptHistogram.at(v), b.attemptHistogram.at(v))
            << label << " bucket " << v;
}

/** Deterministic mixed read/write stream over a small tag space. */
std::vector<DirRequest>
makeStream(std::uint64_t seed, std::size_t count, std::size_t tag_space)
{
    Rng rng(seed);
    std::vector<DirRequest> stream;
    stream.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        stream.push_back(DirRequest{
            rng.below(tag_space), static_cast<CacheId>(rng.below(kCaches)),
            rng.chance(0.3)});
    }
    return stream;
}

TEST(BatchAccess, ScalarAndBatchProduceBitIdenticalStats)
{
    for (const std::string &name : DirectoryRegistry::instance().names()) {
        const DirectoryParams p = paramsFor(name);
        auto scalar_dir = DirectoryRegistry::instance().build(name, p);
        auto batch_dir = DirectoryRegistry::instance().build(name, p);
        ASSERT_NE(scalar_dir, nullptr) << name;
        ASSERT_NE(batch_dir, nullptr) << name;

        const auto stream = makeStream(7, 4096, 512);
        DirAccessContext scalar_ctx = scalar_dir->makeContext();
        DirAccessContext ctx = batch_dir->makeContext();

        constexpr std::size_t kChunk = 16;
        for (std::size_t base = 0; base < stream.size(); base += kChunk) {
            const std::size_t n =
                std::min(kChunk, stream.size() - base);
            // Scalar side: one request per context reset.
            for (std::size_t i = 0; i < n; ++i) {
                scalar_ctx.reset();
                scalar_dir->access(stream[base + i], scalar_ctx);
            }
            // Batch side: the whole chunk through one context.
            ctx.reset();
            batch_dir->accessBatch(
                std::span<const DirRequest>(&stream[base], n), ctx);
            ASSERT_EQ(ctx.size(), n) << name;
            // Interleave removals at chunk boundaries on both sides so
            // the free/recycle paths are exercised identically.
            const DirRequest &r = stream[base];
            scalar_dir->removeSharer(r.tag, r.cache);
            batch_dir->removeSharer(r.tag, r.cache);
        }

        expectStatsEqual(scalar_dir->stats(), batch_dir->stats(), name);
        EXPECT_EQ(scalar_dir->validEntries(), batch_dir->validEntries())
            << name;
    }
}

TEST(BatchAccess, SnapshotsMatchContextOutcomes)
{
    // DirAccessResult snapshots (the value-semantics convenience used
    // by tests/examples) must reproduce the live context outcome field
    // by field, including the pooled invalidation/eviction storage.
    for (const std::string &name : DirectoryRegistry::instance().names()) {
        const DirectoryParams p = paramsFor(name);
        auto snap_dir = DirectoryRegistry::instance().build(name, p);
        auto ctx_dir = DirectoryRegistry::instance().build(name, p);

        const auto stream = makeStream(23, 2048, 256);
        DirAccessContext ctx = ctx_dir->makeContext();
        for (const DirRequest &r : stream) {
            const DirAccessResult snap =
                test::accessDir(*snap_dir, r.tag, r.cache, r.isWrite);
            ctx.reset();
            ctx_dir->access(r, ctx);
            ASSERT_EQ(ctx.size(), 1u) << name;
            const DirAccessOutcome &out = ctx.back();
            ASSERT_EQ(out.hit, snap.hit) << name;
            ASSERT_EQ(out.inserted, snap.inserted) << name;
            ASSERT_EQ(out.insertDiscarded, snap.insertDiscarded) << name;
            ASSERT_EQ(out.attempts, snap.attempts) << name;
            ASSERT_EQ(out.hadSharerInvalidations,
                      snap.hadSharerInvalidations)
                << name;
            if (out.hadSharerInvalidations) {
                ASSERT_TRUE(ctx.sharerInvalidations(out) ==
                            snap.sharerInvalidations)
                    << name;
            }
            ASSERT_EQ(out.evictionCount, snap.forcedEvictions.size())
                << name;
            for (std::size_t e = 0; e < out.evictionCount; ++e) {
                const EvictedEntry &got = ctx.forcedEviction(out, e);
                ASSERT_EQ(got.tag, snap.forcedEvictions[e].tag) << name;
                ASSERT_TRUE(got.targets ==
                            snap.forcedEvictions[e].targets)
                    << name;
            }
        }
        expectStatsEqual(snap_dir->stats(), ctx_dir->stats(), name);
    }
}

WorkloadParams
tinyWorkload(std::uint64_t seed)
{
    WorkloadParams p;
    p.numCores = 4;
    p.codeBlocks = 64;
    p.sharedBlocks = 128;
    p.privateBlocksPerCore = 64;
    p.instructionFraction = 0.2;
    p.sharedDataFraction = 0.4;
    p.writeFraction = 0.25;
    p.seed = seed;
    return p;
}

CmpConfig
tinyConfig(const std::string &organization, std::size_t batch_window)
{
    CmpConfig cfg;
    cfg.kind = CmpConfigKind::SharedL2;
    cfg.numCores = 4;
    cfg.numSlices = 4;
    cfg.privateCache = CacheConfig{32, 2};
    cfg.batchWindow = batch_window;
    cfg.directory = paramsFor(organization);
    cfg.directory.ways =
        (organization == "Sparse" || organization == "InCache") ? 8 : 4;
    cfg.directory.sets = 32;
    return cfg;
}

TEST(BatchAccess, WindowedRunsKeepCoverageForEveryOrganization)
{
    for (const std::string &name : DirectoryRegistry::instance().names()) {
        for (const std::size_t window : {std::size_t{4}, std::size_t{64}}) {
            CmpSystem sys(tinyConfig(name, window));
            SyntheticWorkload gen(tinyWorkload(11));
            sys.run(gen, 20000);
            EXPECT_TRUE(sys.directoryCoversCaches())
                << name << " window " << window;
            EXPECT_EQ(sys.stats().accesses, 20000u);
        }
    }
}

TEST(BatchAccess, WindowOfOneMatchesPerReferenceDriver)
{
    // run() with the default window must be bit-identical to calling
    // access() per reference (the historical serial driver).
    for (const std::string &name :
         {std::string("Cuckoo"), std::string("Sparse"),
          std::string("DuplicateTag"), std::string("Tagless")}) {
        CmpSystem batched(tinyConfig(name, 1));
        CmpSystem serial(tinyConfig(name, 1));
        SyntheticWorkload gen_a(tinyWorkload(5));
        SyntheticWorkload gen_b(tinyWorkload(5));

        batched.run(gen_a, 30000);
        for (int i = 0; i < 30000; ++i)
            serial.access(gen_b.next());

        expectStatsEqual(batched.aggregateDirectoryStats(),
                         serial.aggregateDirectoryStats(), name);
        EXPECT_EQ(batched.stats().cacheHits, serial.stats().cacheHits)
            << name;
        EXPECT_EQ(batched.stats().sharingInvalidations,
                  serial.stats().sharingInvalidations)
            << name;
        EXPECT_EQ(batched.stats().forcedInvalidations,
                  serial.stats().forcedInvalidations)
            << name;
    }
}

/** Fixed access list as an AccessSource. */
class VectorSource : public AccessSource
{
  public:
    explicit VectorSource(std::vector<MemAccess> list)
        : accesses(std::move(list))
    {}
    MemAccess next() override { return accesses[index++]; }
    bool exhausted() const override { return index >= accesses.size(); }

  private:
    std::vector<MemAccess> accesses;
    std::size_t index = 0;
};

TEST(BatchAccess, SameWindowEvictionAfterInsertRetiresSharer)
{
    // A cache eviction staged *after* its tag's directory insertion in
    // the same batch window must still retire the sharer: the flush
    // replays each slice's removals and requests in staging order.
    CmpConfig cfg;
    cfg.kind = CmpConfigKind::SharedL2;
    cfg.numCores = 1;
    cfg.numSlices = 1;
    cfg.privateCache = CacheConfig{1, 2}; // one set, two ways
    cfg.batchWindow = 8;
    cfg.directory = paramsFor("Cuckoo");
    cfg.directory.sets = 16;

    CmpSystem sys(cfg);
    // Three data reads from core 0 land in the single D-cache set: the
    // third evicts the first (LRU) after all three directory requests
    // began staging in the same window.
    VectorSource source({MemAccess{0, 0xA0, false, false},
                         MemAccess{0, 0xB0, false, false},
                         MemAccess{0, 0xC0, false, false}});
    sys.run(source, 3, 0);

    EXPECT_FALSE(sys.slice(0).probe(0xA0))
        << "stale sharer: same-window eviction was lost";
    EXPECT_TRUE(sys.slice(0).probe(0xB0));
    EXPECT_TRUE(sys.slice(0).probe(0xC0));
    EXPECT_TRUE(sys.directoryCoversCaches());
    EXPECT_EQ(sys.aggregateDirectoryStats().sharerRemovals, 1u);
    EXPECT_EQ(sys.aggregateDirectoryStats().entryFrees, 1u);
}

TEST(BatchAccess, SteadyStateChurnIsAllocationFree)
{
    for (const std::string &name : DirectoryRegistry::instance().names()) {
        auto dir = DirectoryRegistry::instance().build(name, paramsFor(name));
        DirAccessContext ctx = dir->makeContext();

        // Steady-state churn: retire one tracked tag, insert a fresh
        // one, sprinkle write upgrades to exercise the invalidation
        // bitset pool. Two passes: the first grows every pool to its
        // high-water mark, the second must not allocate at all.
        std::vector<Tag> live;
        Rng rng(17);
        while (live.size() < 128) {
            const Tag tag = rng.next() >> 8;
            if (dir->probe(tag))
                continue;
            ctx.reset();
            dir->access(DirRequest{tag, 0, false}, ctx);
            live.push_back(tag);
        }

        auto churn = [&](std::size_t rounds) {
            std::size_t k = 0;
            for (std::size_t i = 0; i < rounds; ++i) {
                k = (k + 1) % live.size();
                dir->removeSharer(live[k], 0);
                const Tag fresh = rng.next() >> 8;
                ctx.reset();
                dir->access(DirRequest{fresh, 0, false}, ctx);
                dir->access(DirRequest{fresh, 1, false}, ctx);
                dir->access(DirRequest{fresh, 0, true}, ctx);
                live[k] = fresh;
            }
        };

        churn(4096); // warmup: grow pools, rep free-lists, shadow maps
        const std::size_t before = allocationCount();
        churn(4096); // steady state
        const std::size_t allocated = allocationCount() - before;
        EXPECT_EQ(allocated, 0u)
            << name << " allocated " << allocated
            << " times in steady-state churn";
    }
}

TEST(BatchAccess, SteadyStateSystemRunIsAllocationFree)
{
    // The whole-system acceptance criterion: after warmup,
    // CmpSystem::run() performs zero heap allocations per access.
    CmpConfig cfg = tinyConfig("Cuckoo", 16);
    CmpSystem sys(cfg);
    SyntheticWorkload gen(tinyWorkload(29));
    sys.run(gen, 50000); // warmup: caches fill, pools grow
    const std::size_t before = allocationCount();
    sys.run(gen, 50000); // steady state
    const std::size_t allocated = allocationCount() - before;
    EXPECT_EQ(allocated, 0u)
        << "steady-state run() allocated " << allocated << " times";
}

} // namespace
} // namespace cdir
