/**
 * @file
 * Cross-cutting property tests:
 *
 *  - equivalence of every conflict-free organization against a
 *    reference model over long random protocol streams;
 *  - sharer-format composition with the Cuckoo organization (§6: "the
 *    Cuckoo organization can be used in conjunction with any of these
 *    space-reduction techniques");
 *  - cuckoo table stress with interleaved insert/erase against a
 *    shadow map;
 *  - determinism of whole-system runs.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hh"
#include "directory/cuckoo_directory.hh"
#include "directory/cuckoo_table.hh"
#include "directory/directory.hh"
#include "sim/experiment.hh"

#include "dir_test_util.hh"

namespace cdir {
namespace {

constexpr std::size_t kCaches = 8;

/**
 * Reference directory model: exact map from tag to sharer set with the
 * same protocol semantics, unbounded capacity.
 */
class ReferenceDirectory
{
  public:
    void
    access(Tag tag, CacheId cache, bool is_write,
           std::set<CacheId> *invalidated = nullptr)
    {
        auto &sharers = entries[tag];
        if (is_write) {
            for (CacheId c : sharers)
                if (c != cache && invalidated)
                    invalidated->insert(c);
            sharers = {cache};
        } else {
            sharers.insert(cache);
        }
    }

    void
    removeSharer(Tag tag, CacheId cache)
    {
        auto it = entries.find(tag);
        if (it == entries.end())
            return;
        it->second.erase(cache);
        if (it->second.empty())
            entries.erase(it);
    }

    const std::map<Tag, std::set<CacheId>> &all() const { return entries; }

  private:
    std::map<Tag, std::set<CacheId>> entries;
};

/** Drive @p dir and the reference in lockstep; verify coverage. */
void
lockstepCheck(Directory &dir, std::uint64_t seed, int steps,
              std::size_t tag_space, bool expect_exact_count)
{
    ReferenceDirectory ref;
    Rng rng(seed);
    for (int step = 0; step < steps; ++step) {
        const Tag tag = rng.below(tag_space);
        const auto cache = static_cast<CacheId>(rng.below(kCaches));
        const double roll = rng.uniform();
        if (roll < 0.45) {
            const auto &sharers = ref.all();
            auto it = sharers.find(tag);
            if (it == sharers.end() || !it->second.count(cache)) {
                test::accessDir(dir, tag, cache, false);
                ref.access(tag, cache, false);
            }
        } else if (roll < 0.65) {
            test::accessDir(dir, tag, cache, true);
            ref.access(tag, cache, true);
        } else {
            // Caches only notify evictions of blocks they actually hold
            // (imprecise formats rely on this protocol invariant).
            const auto &sharers = ref.all();
            auto it = sharers.find(tag);
            if (it != sharers.end() && it->second.count(cache)) {
                dir.removeSharer(tag, cache);
                ref.removeSharer(tag, cache);
            }
        }
    }
    // Every reference entry must be tracked with a superset of its
    // sharers (organizations here are sized to never conflict).
    std::size_t ref_entries = 0;
    for (const auto &[tag, sharers] : ref.all()) {
        if (sharers.empty())
            continue;
        ++ref_entries;
        DynamicBitset targets;
        ASSERT_TRUE(dir.probe(tag, &targets)) << "tag " << tag;
        for (CacheId c : sharers) {
            ASSERT_TRUE(targets.test(c))
                << "tag " << tag << " cache " << c;
        }
    }
    if (expect_exact_count) {
        EXPECT_EQ(dir.validEntries(), ref_entries);
    }
}

struct EquivCase
{
    DirectoryKind kind;
    SharerFormat format;
};

std::string
equivName(const testing::TestParamInfo<EquivCase> &info)
{
    const char *fmt =
        info.param.format == SharerFormat::FullVector     ? "Full"
        : info.param.format == SharerFormat::CoarseVector ? "Coarse"
                                                          : "Hier";
    return directoryKindName(info.param.kind) + "_" + fmt;
}

class DirectoryEquivalence : public testing::TestWithParam<EquivCase>
{};

TEST_P(DirectoryEquivalence, MatchesReferenceModel)
{
    DirectoryParams p;
    p.kind = GetParam().kind;
    p.numCaches = kCaches;
    p.format = GetParam().format;
    // Generous sizing: 96 live tags at most, >=1024 entries.
    switch (p.kind) {
      case DirectoryKind::Cuckoo:
      case DirectoryKind::Skewed:
      case DirectoryKind::Elbow:
        p.ways = 4;
        p.sets = 256;
        break;
      case DirectoryKind::Sparse:
      case DirectoryKind::InCache:
        p.ways = 8;
        p.sets = 128;
        break;
      case DirectoryKind::DuplicateTag:
      case DirectoryKind::Tagless:
        p.sets = 64;
        p.trackedCacheAssoc = 4;
        p.taglessBucketBits = 256;
        break;
    }
    auto dir = makeDirectory(p);
    ASSERT_NE(dir, nullptr);
    // DuplicateTag mirrors per-cache frames: exact entry counting
    // differs (an entry per (tag, cache)); skip the count check there.
    const bool exact = p.kind != DirectoryKind::DuplicateTag;
    lockstepCheck(*dir, 1000 + static_cast<int>(p.kind), 6000, 96,
                  exact);
    EXPECT_EQ(dir->stats().forcedEvictions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, DirectoryEquivalence,
    testing::Values(
        EquivCase{DirectoryKind::Cuckoo, SharerFormat::FullVector},
        EquivCase{DirectoryKind::Cuckoo, SharerFormat::CoarseVector},
        EquivCase{DirectoryKind::Cuckoo, SharerFormat::Hierarchical},
        EquivCase{DirectoryKind::Sparse, SharerFormat::FullVector},
        EquivCase{DirectoryKind::Sparse, SharerFormat::CoarseVector},
        EquivCase{DirectoryKind::Sparse, SharerFormat::Hierarchical},
        EquivCase{DirectoryKind::Skewed, SharerFormat::FullVector},
        EquivCase{DirectoryKind::Skewed, SharerFormat::CoarseVector},
        EquivCase{DirectoryKind::Elbow, SharerFormat::FullVector},
        EquivCase{DirectoryKind::Elbow, SharerFormat::Hierarchical},
        EquivCase{DirectoryKind::DuplicateTag, SharerFormat::FullVector},
        EquivCase{DirectoryKind::InCache, SharerFormat::FullVector},
        EquivCase{DirectoryKind::Tagless, SharerFormat::FullVector}),
    equivName);

// --- format composition specifics ------------------------------------------------

TEST(CuckooFormatComposition, CoarseWritesInvalidateSupersets)
{
    // With >2 sharers the coarse format overflows to groups; a write
    // must target at least the true sharers (possibly more).
    CuckooDirectory dir(64, 4, 64, SharerFormat::CoarseVector);
    for (CacheId c : {CacheId{1}, CacheId{17}, CacheId{33}})
        test::accessDir(dir, 0x77, c, false);
    auto res = test::accessDir(dir, 0x77, 1, true);
    ASSERT_TRUE(res.hadSharerInvalidations);
    EXPECT_TRUE(res.sharerInvalidations.test(17));
    EXPECT_TRUE(res.sharerInvalidations.test(33));
    EXPECT_FALSE(res.sharerInvalidations.test(1)); // writer excluded
}

TEST(CuckooFormatComposition, HierarchicalStaysPrecise)
{
    CuckooDirectory dir(64, 4, 64, SharerFormat::Hierarchical);
    for (CacheId c : {CacheId{0}, CacheId{8}, CacheId{63}})
        test::accessDir(dir, 0x99, c, false);
    auto res = test::accessDir(dir, 0x99, 63, true);
    ASSERT_TRUE(res.hadSharerInvalidations);
    EXPECT_EQ(res.sharerInvalidations.count(), 2u);
}

TEST(CuckooFormatComposition, DiscardedCoarseEntryInvalidatesGroups)
{
    // When a coarse-format entry is discarded, its invalidation targets
    // cover whole groups — the safety property under imprecision.
    CuckooDirectory dir(64, 2, 4, SharerFormat::CoarseVector,
                        HashKind::Strong, 4);
    Rng rng(31);
    bool checked = false;
    int guard = 0;
    while (!checked) {
        ASSERT_LT(++guard, 200000) << "no coarse eviction observed";
        const Tag tag = rng.next() >> 3;
        if (dir.probe(tag))
            continue;
        // Give each entry three sharers so it is coarse when evicted.
        auto res = test::accessDir(dir, tag, 1, false);
        if (!res.insertDiscarded) {
            test::accessDir(dir, tag, 17, false);
            test::accessDir(dir, tag, 33, false);
        }
        for (const auto &evicted : res.forcedEvictions) {
            if (evicted.targets.count() >= 3) {
                checked = true;
                EXPECT_TRUE(evicted.targets.test(1) ||
                            evicted.targets.count() >= 3);
            }
        }
    }
    SUCCEED();
}

// --- cuckoo table stress -----------------------------------------------------------

TEST(CuckooTableStress, ShadowMapAgreesUnderChurn)
{
    auto family = makeHashFamily(HashKind::Skewing, 4, 512, 3);
    CuckooTable<std::uint64_t> table(*family, 32);
    std::map<Tag, std::uint64_t> shadow;
    Rng rng(41);
    for (int step = 0; step < 50000; ++step) {
        if (!shadow.empty() && rng.chance(0.45)) {
            auto it = shadow.begin();
            std::advance(it, rng.below(shadow.size()));
            auto payload = table.erase(it->first);
            ASSERT_TRUE(payload.has_value());
            ASSERT_EQ(*payload, it->second);
            shadow.erase(it);
        } else if (shadow.size() < table.capacity() / 2) {
            const Tag tag = rng.next() >> 6;
            if (shadow.count(tag))
                continue;
            const std::uint64_t value = rng.next();
            auto res = table.insert(tag, std::uint64_t{value});
            ASSERT_FALSE(res.discarded); // <=50% occupancy never fails
            shadow[tag] = value;
        }
        ASSERT_EQ(table.size(), shadow.size());
    }
    for (const auto &[tag, value] : shadow) {
        auto *found = table.find(tag);
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(*found, value);
    }
}

TEST(CuckooTableStress, ReinsertAfterEraseFindsFreshPayload)
{
    auto family = makeHashFamily(HashKind::Strong, 3, 64, 9);
    CuckooTable<int> table(*family);
    table.insert(42, 1);
    table.erase(42);
    table.insert(42, 2);
    ASSERT_NE(table.find(42), nullptr);
    EXPECT_EQ(*table.find(42), 2);
    EXPECT_EQ(table.size(), 1u);
}

// --- whole-system determinism ------------------------------------------------------

TEST(SystemDeterminism, IdenticalRunsBitForBit)
{
    CmpConfig cfg = CmpConfig::paperConfig(CmpConfigKind::SharedL2);
    cfg.numCores = 4;
    cfg.numSlices = 4;
    cfg.privateCache = CacheConfig{64, 2};
    cfg.directory = cuckooSliceParams(4, 64);

    auto run = [&] {
        CmpSystem sys(cfg);
        WorkloadParams params;
        params.numCores = 4;
        params.seed = 99;
        params.codeBlocks = 128;
        params.sharedBlocks = 512;
        params.privateBlocksPerCore = 256;
        SyntheticWorkload gen(params);
        sys.run(gen, 50000);
        return sys.aggregateDirectoryStats();
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.lookups, b.lookups);
    EXPECT_EQ(a.insertions, b.insertions);
    EXPECT_EQ(a.forcedEvictions, b.forcedEvictions);
    EXPECT_EQ(a.entryFrees, b.entryFrees);
    EXPECT_DOUBLE_EQ(a.insertionAttempts.mean(),
                     b.insertionAttempts.mean());
}

} // namespace
} // namespace cdir
