/**
 * @file
 * Cross-cutting property tests:
 *
 *  - equivalence of every conflict-free organization against a
 *    reference model over long random protocol streams;
 *  - sharer-format composition with the Cuckoo organization (§6: "the
 *    Cuckoo organization can be used in conjunction with any of these
 *    space-reduction techniques");
 *  - cuckoo table stress with interleaved insert/erase against a
 *    shadow map;
 *  - determinism of whole-system runs;
 *  - cross-organization differential stress: one randomized workload
 *    replayed through every registered organization, asserting the
 *    shared coherence invariants (sharer-set coverage,
 *    eviction-invalidation accounting, conflict-free organizations
 *    agreeing on cache behaviour) and serial/sharded equality. The
 *    workload profile is drawn from a logged seed; set
 *    CDIR_STRESS_SEED=N to replay an extra profile when chasing a
 *    failure.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "directory/cuckoo_directory.hh"
#include "directory/cuckoo_table.hh"
#include "directory/directory.hh"
#include "directory/registry.hh"
#include "sim/experiment.hh"

#include "dir_test_util.hh"
#include "golden_trace_util.hh"

namespace cdir {
namespace {

constexpr std::size_t kCaches = 8;

/**
 * Reference directory model: exact map from tag to sharer set with the
 * same protocol semantics, unbounded capacity.
 */
class ReferenceDirectory
{
  public:
    void
    access(Tag tag, CacheId cache, bool is_write,
           std::set<CacheId> *invalidated = nullptr)
    {
        auto &sharers = entries[tag];
        if (is_write) {
            for (CacheId c : sharers)
                if (c != cache && invalidated)
                    invalidated->insert(c);
            sharers = {cache};
        } else {
            sharers.insert(cache);
        }
    }

    void
    removeSharer(Tag tag, CacheId cache)
    {
        auto it = entries.find(tag);
        if (it == entries.end())
            return;
        it->second.erase(cache);
        if (it->second.empty())
            entries.erase(it);
    }

    const std::map<Tag, std::set<CacheId>> &all() const { return entries; }

  private:
    std::map<Tag, std::set<CacheId>> entries;
};

/** Drive @p dir and the reference in lockstep; verify coverage. */
void
lockstepCheck(Directory &dir, std::uint64_t seed, int steps,
              std::size_t tag_space, bool expect_exact_count)
{
    ReferenceDirectory ref;
    Rng rng(seed);
    for (int step = 0; step < steps; ++step) {
        const Tag tag = rng.below(tag_space);
        const auto cache = static_cast<CacheId>(rng.below(kCaches));
        const double roll = rng.uniform();
        if (roll < 0.45) {
            const auto &sharers = ref.all();
            auto it = sharers.find(tag);
            if (it == sharers.end() || !it->second.count(cache)) {
                test::accessDir(dir, tag, cache, false);
                ref.access(tag, cache, false);
            }
        } else if (roll < 0.65) {
            test::accessDir(dir, tag, cache, true);
            ref.access(tag, cache, true);
        } else {
            // Caches only notify evictions of blocks they actually hold
            // (imprecise formats rely on this protocol invariant).
            const auto &sharers = ref.all();
            auto it = sharers.find(tag);
            if (it != sharers.end() && it->second.count(cache)) {
                dir.removeSharer(tag, cache);
                ref.removeSharer(tag, cache);
            }
        }
    }
    // Every reference entry must be tracked with a superset of its
    // sharers (organizations here are sized to never conflict).
    std::size_t ref_entries = 0;
    for (const auto &[tag, sharers] : ref.all()) {
        if (sharers.empty())
            continue;
        ++ref_entries;
        DynamicBitset targets;
        ASSERT_TRUE(dir.probe(tag, &targets)) << "tag " << tag;
        for (CacheId c : sharers) {
            ASSERT_TRUE(targets.test(c))
                << "tag " << tag << " cache " << c;
        }
    }
    if (expect_exact_count) {
        EXPECT_EQ(dir.validEntries(), ref_entries);
    }
}

struct EquivCase
{
    DirectoryKind kind;
    SharerFormat format;
};

std::string
equivName(const testing::TestParamInfo<EquivCase> &info)
{
    const char *fmt =
        info.param.format == SharerFormat::FullVector     ? "Full"
        : info.param.format == SharerFormat::CoarseVector ? "Coarse"
                                                          : "Hier";
    return directoryKindName(info.param.kind) + "_" + fmt;
}

class DirectoryEquivalence : public testing::TestWithParam<EquivCase>
{};

TEST_P(DirectoryEquivalence, MatchesReferenceModel)
{
    DirectoryParams p;
    p.kind = GetParam().kind;
    p.numCaches = kCaches;
    p.format = GetParam().format;
    // Generous sizing: 96 live tags at most, >=1024 entries.
    switch (p.kind) {
      case DirectoryKind::Cuckoo:
      case DirectoryKind::Skewed:
      case DirectoryKind::Elbow:
        p.ways = 4;
        p.sets = 256;
        break;
      case DirectoryKind::Sparse:
      case DirectoryKind::InCache:
        p.ways = 8;
        p.sets = 128;
        break;
      case DirectoryKind::DuplicateTag:
      case DirectoryKind::Tagless:
        p.sets = 64;
        p.trackedCacheAssoc = 4;
        p.taglessBucketBits = 256;
        break;
    }
    auto dir = makeDirectory(p);
    ASSERT_NE(dir, nullptr);
    // DuplicateTag mirrors per-cache frames: exact entry counting
    // differs (an entry per (tag, cache)); skip the count check there.
    const bool exact = p.kind != DirectoryKind::DuplicateTag;
    lockstepCheck(*dir, 1000 + static_cast<int>(p.kind), 6000, 96,
                  exact);
    EXPECT_EQ(dir->stats().forcedEvictions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, DirectoryEquivalence,
    testing::Values(
        EquivCase{DirectoryKind::Cuckoo, SharerFormat::FullVector},
        EquivCase{DirectoryKind::Cuckoo, SharerFormat::CoarseVector},
        EquivCase{DirectoryKind::Cuckoo, SharerFormat::Hierarchical},
        EquivCase{DirectoryKind::Sparse, SharerFormat::FullVector},
        EquivCase{DirectoryKind::Sparse, SharerFormat::CoarseVector},
        EquivCase{DirectoryKind::Sparse, SharerFormat::Hierarchical},
        EquivCase{DirectoryKind::Skewed, SharerFormat::FullVector},
        EquivCase{DirectoryKind::Skewed, SharerFormat::CoarseVector},
        EquivCase{DirectoryKind::Elbow, SharerFormat::FullVector},
        EquivCase{DirectoryKind::Elbow, SharerFormat::Hierarchical},
        EquivCase{DirectoryKind::DuplicateTag, SharerFormat::FullVector},
        EquivCase{DirectoryKind::InCache, SharerFormat::FullVector},
        EquivCase{DirectoryKind::Tagless, SharerFormat::FullVector}),
    equivName);

// --- format composition specifics ------------------------------------------------

TEST(CuckooFormatComposition, CoarseWritesInvalidateSupersets)
{
    // With >2 sharers the coarse format overflows to groups; a write
    // must target at least the true sharers (possibly more).
    CuckooDirectory dir(64, 4, 64, SharerFormat::CoarseVector);
    for (CacheId c : {CacheId{1}, CacheId{17}, CacheId{33}})
        test::accessDir(dir, 0x77, c, false);
    auto res = test::accessDir(dir, 0x77, 1, true);
    ASSERT_TRUE(res.hadSharerInvalidations);
    EXPECT_TRUE(res.sharerInvalidations.test(17));
    EXPECT_TRUE(res.sharerInvalidations.test(33));
    EXPECT_FALSE(res.sharerInvalidations.test(1)); // writer excluded
}

TEST(CuckooFormatComposition, HierarchicalStaysPrecise)
{
    CuckooDirectory dir(64, 4, 64, SharerFormat::Hierarchical);
    for (CacheId c : {CacheId{0}, CacheId{8}, CacheId{63}})
        test::accessDir(dir, 0x99, c, false);
    auto res = test::accessDir(dir, 0x99, 63, true);
    ASSERT_TRUE(res.hadSharerInvalidations);
    EXPECT_EQ(res.sharerInvalidations.count(), 2u);
}

TEST(CuckooFormatComposition, DiscardedCoarseEntryInvalidatesGroups)
{
    // When a coarse-format entry is discarded, its invalidation targets
    // cover whole groups — the safety property under imprecision.
    CuckooDirectory dir(64, 2, 4, SharerFormat::CoarseVector,
                        HashKind::Strong, 4);
    Rng rng(31);
    bool checked = false;
    int guard = 0;
    while (!checked) {
        ASSERT_LT(++guard, 200000) << "no coarse eviction observed";
        const Tag tag = rng.next() >> 3;
        if (dir.probe(tag))
            continue;
        // Give each entry three sharers so it is coarse when evicted.
        auto res = test::accessDir(dir, tag, 1, false);
        if (!res.insertDiscarded) {
            test::accessDir(dir, tag, 17, false);
            test::accessDir(dir, tag, 33, false);
        }
        for (const auto &evicted : res.forcedEvictions) {
            if (evicted.targets.count() >= 3) {
                checked = true;
                EXPECT_TRUE(evicted.targets.test(1) ||
                            evicted.targets.count() >= 3);
            }
        }
    }
    SUCCEED();
}

// --- cuckoo table stress -----------------------------------------------------------

TEST(CuckooTableStress, ShadowMapAgreesUnderChurn)
{
    auto family = makeHashFamily(HashKind::Skewing, 4, 512, 3);
    CuckooTable<std::uint64_t> table(*family, 32);
    std::map<Tag, std::uint64_t> shadow;
    Rng rng(41);
    for (int step = 0; step < 50000; ++step) {
        if (!shadow.empty() && rng.chance(0.45)) {
            auto it = shadow.begin();
            std::advance(it, rng.below(shadow.size()));
            auto payload = table.erase(it->first);
            ASSERT_TRUE(payload.has_value());
            ASSERT_EQ(*payload, it->second);
            shadow.erase(it);
        } else if (shadow.size() < table.capacity() / 2) {
            const Tag tag = rng.next() >> 6;
            if (shadow.count(tag))
                continue;
            const std::uint64_t value = rng.next();
            auto res = table.insert(tag, std::uint64_t{value});
            ASSERT_FALSE(res.discarded); // <=50% occupancy never fails
            shadow[tag] = value;
        }
        ASSERT_EQ(table.size(), shadow.size());
    }
    for (const auto &[tag, value] : shadow) {
        auto *found = table.find(tag);
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(*found, value);
    }
}

TEST(CuckooTableStress, ReinsertAfterEraseFindsFreshPayload)
{
    auto family = makeHashFamily(HashKind::Strong, 3, 64, 9);
    CuckooTable<int> table(*family);
    table.insert(42, 1);
    table.erase(42);
    table.insert(42, 2);
    ASSERT_NE(table.find(42), nullptr);
    EXPECT_EQ(*table.find(42), 2);
    EXPECT_EQ(table.size(), 1u);
}

// --- cross-organization differential stress ----------------------------------------

/**
 * Randomized sharing profile drawn from @p seed: footprints, mixes, and
 * skews all vary, so different seeds stress different directory paths
 * (upgrade-heavy, eviction-heavy, private-dominated).
 */
WorkloadParams
randomStressProfile(std::uint64_t seed)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    WorkloadParams wl;
    wl.name = "stress-" + std::to_string(seed);
    wl.numCores = 4;
    wl.seed = seed;
    wl.codeBlocks = 32 + rng.below(256);
    wl.sharedBlocks = 64 + rng.below(1024);
    wl.privateBlocksPerCore = 32 + rng.below(512);
    wl.instructionFraction = 0.1 + 0.4 * rng.uniform();
    wl.sharedDataFraction = 0.2 + 0.5 * rng.uniform();
    wl.writeFraction = 0.05 + 0.4 * rng.uniform();
    wl.codeTheta = rng.uniform();
    wl.sharedTheta = rng.uniform();
    wl.privateTheta = rng.uniform();
    return wl;
}

/** Per-organization outcome of one stress replay. */
struct StressOutcome
{
    CmpStats system;
    DirectoryStats directory;
    bool covers = false;
};

StressOutcome
replayStress(const std::string &organization, const WorkloadParams &wl,
             std::uint64_t accesses, unsigned shards)
{
    // The golden suite's under-provisioned 4-core replay system: the
    // stress profiles must exercise the same conflict paths the pinned
    // tables cover.
    CmpSystem system(test::goldenReplayConfig(organization,
                                              CmpConfigKind::SharedL2));
    system.setShards(shards);
    SyntheticWorkload gen(wl);
    system.run(gen, accesses);
    return StressOutcome{system.stats(),
                         system.aggregateDirectoryStats(),
                         system.directoryCoversCaches()};
}

TEST(DifferentialStress, AllOrganizationsHoldCoherenceInvariants)
{
    std::vector<std::uint64_t> seeds = {11, 42, 1337};
    if (const char *extra = std::getenv("CDIR_STRESS_SEED"))
        seeds.push_back(std::strtoull(extra, nullptr, 10));

    const DirectoryRegistry &registry = DirectoryRegistry::instance();
    for (const std::uint64_t seed : seeds) {
        SCOPED_TRACE("stress seed " + std::to_string(seed) +
                     " (replay with CDIR_STRESS_SEED=" +
                     std::to_string(seed) + " ./property_test)");
        const WorkloadParams wl = randomStressProfile(seed);
        constexpr std::uint64_t kAccesses = 30000;

        // One conflict-free organization's cache-side behaviour is the
        // reference: every other conflict-free organization must agree
        // on it exactly (they never force evictions, and imprecise
        // write-invalidation supersets only ever target non-resident
        // blocks, so the private caches evolve identically).
        bool have_reference = false;
        CmpStats reference;

        for (const std::string &org : registry.names()) {
            SCOPED_TRACE("organization " + org);
            const StressOutcome out =
                replayStress(org, wl, kAccesses, 1);
            const CmpStats &sys = out.system;
            const DirectoryStats &dir = out.directory;

            // Sharer-set supersets: every resident private-cache block
            // is tracked by its home slice with its cache in the
            // (possibly imprecise) sharer set.
            EXPECT_TRUE(out.covers);

            // Bookkeeping identities shared by every organization.
            EXPECT_EQ(sys.accesses, kAccesses);
            EXPECT_EQ(sys.cacheHits + sys.cacheMisses, sys.accesses);
            EXPECT_EQ(dir.lookups, sys.cacheMisses + sys.writeUpgrades);
            EXPECT_LE(dir.hits, dir.lookups);
            EXPECT_LE(dir.insertions, dir.lookups);

            // Eviction-invalidation accounting: the system-side forced
            // invalidations are the resident subset of the directory's
            // forced-eviction targets, and cache-side eviction
            // notifications can only retire sharers that exist.
            EXPECT_LE(sys.forcedInvalidations,
                      dir.forcedBlockInvalidations);
            EXPECT_LE(dir.forcedEvictions, dir.insertions);
            EXPECT_LE(dir.sharerRemovals, sys.cacheEvictions);

            if (registry.traits(org).mirrorsTrackedCaches) {
                // Mirrored geometry cannot conflict (§3.1).
                EXPECT_EQ(dir.forcedEvictions, 0u);
                EXPECT_EQ(dir.forcedBlockInvalidations, 0u);
                EXPECT_EQ(sys.forcedInvalidations, 0u);
                if (!have_reference) {
                    reference = sys;
                    have_reference = true;
                } else {
                    EXPECT_EQ(sys.cacheHits, reference.cacheHits);
                    EXPECT_EQ(sys.cacheMisses, reference.cacheMisses);
                    EXPECT_EQ(sys.cacheEvictions,
                              reference.cacheEvictions);
                    EXPECT_EQ(sys.sharingInvalidations,
                              reference.sharingInvalidations);
                }
            }

            // Differential shard axis: the same replay at 3 lanes must
            // agree bit for bit (slice independence).
            const StressOutcome sharded =
                replayStress(org, wl, kAccesses, 3);
            EXPECT_EQ(sharded.system.cacheMisses, sys.cacheMisses);
            EXPECT_EQ(sharded.system.sharingInvalidations,
                      sys.sharingInvalidations);
            EXPECT_EQ(sharded.system.forcedInvalidations,
                      sys.forcedInvalidations);
            EXPECT_EQ(sharded.directory.insertions, dir.insertions);
            EXPECT_EQ(sharded.directory.forcedEvictions,
                      dir.forcedEvictions);
            EXPECT_EQ(sharded.directory.insertionAttempts.sum(),
                      dir.insertionAttempts.sum());
            EXPECT_EQ(sharded.covers, out.covers);
        }
        EXPECT_TRUE(have_reference)
            << "no conflict-free organization registered?";
    }
}

// --- whole-system determinism ------------------------------------------------------

TEST(SystemDeterminism, IdenticalRunsBitForBit)
{
    CmpConfig cfg = CmpConfig::paperConfig(CmpConfigKind::SharedL2);
    cfg.numCores = 4;
    cfg.numSlices = 4;
    cfg.privateCache = CacheConfig{64, 2};
    cfg.directory = cuckooSliceParams(4, 64);

    auto run = [&] {
        CmpSystem sys(cfg);
        WorkloadParams params;
        params.numCores = 4;
        params.seed = 99;
        params.codeBlocks = 128;
        params.sharedBlocks = 512;
        params.privateBlocksPerCore = 256;
        SyntheticWorkload gen(params);
        sys.run(gen, 50000);
        return sys.aggregateDirectoryStats();
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.lookups, b.lookups);
    EXPECT_EQ(a.insertions, b.insertions);
    EXPECT_EQ(a.forcedEvictions, b.forcedEvictions);
    EXPECT_EQ(a.entryFrees, b.entryFrees);
    EXPECT_DOUBLE_EQ(a.insertionAttempts.mean(),
                     b.insertionAttempts.mean());
}

} // namespace
} // namespace cdir
