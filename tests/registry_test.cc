/**
 * @file
 * DirectoryRegistry coverage: every organization self-registers and
 * round-trips (list -> build -> name()), traits drive the CMP geometry
 * decisions, unknown names fail with a message naming the alternatives,
 * and the deprecated enum factory is a faithful shim over the registry.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "directory/registry.hh"

#include "dir_test_util.hh"

namespace cdir {
namespace {

/** Workable small parameters for any registered organization. */
DirectoryParams
paramsFor(const std::string &organization)
{
    DirectoryParams p;
    p.organization = organization;
    p.numCaches = 8;
    p.ways = 4;
    p.sets = 64;
    p.trackedCacheAssoc = 2;
    p.taglessBucketBits = 64;
    return p;
}

TEST(DirectoryRegistry, AllSevenOrganizationsRegistered)
{
    const auto names = DirectoryRegistry::instance().names();
    for (const char *expected :
         {"Cuckoo", "Sparse", "Skewed", "DuplicateTag", "InCache",
          "Tagless", "Elbow"}) {
        EXPECT_TRUE(std::find(names.begin(), names.end(), expected) !=
                    names.end())
            << expected << " missing from registry";
        EXPECT_TRUE(DirectoryRegistry::instance().contains(expected));
    }
    EXPECT_GE(names.size(), 7u);
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(DirectoryRegistry, EveryNameRoundTripsThroughBuild)
{
    for (const std::string &name : DirectoryRegistry::instance().names()) {
        const DirectoryParams p = paramsFor(name);
        auto dir = DirectoryRegistry::instance().build(name, p);
        ASSERT_NE(dir, nullptr) << name;
        // Reported names are "<Organization>-<geometry>"; the registry
        // key must prefix them so reports stay greppable.
        EXPECT_EQ(dir->name().rfind(name, 0), 0u)
            << "'" << dir->name() << "' does not start with '" << name
            << "'";
        EXPECT_EQ(dir->numCaches(), p.numCaches);
        EXPECT_GT(dir->capacity(), 0u);
        // A built directory must be immediately usable.
        auto res = test::accessDir(*dir, Tag{1}, CacheId{0}, false);
        EXPECT_TRUE(res.inserted);
        EXPECT_TRUE(dir->probe(Tag{1}));
    }
}

TEST(DirectoryRegistry, MirrorTraitsMatchOrganizations)
{
    const auto &registry = DirectoryRegistry::instance();
    EXPECT_TRUE(registry.traits("DuplicateTag").mirrorsTrackedCaches);
    EXPECT_TRUE(registry.traits("Tagless").mirrorsTrackedCaches);
    EXPECT_FALSE(registry.traits("Cuckoo").mirrorsTrackedCaches);
    EXPECT_FALSE(registry.traits("Sparse").mirrorsTrackedCaches);
    EXPECT_FALSE(registry.traits("Skewed").mirrorsTrackedCaches);
    EXPECT_FALSE(registry.traits("InCache").mirrorsTrackedCaches);
    EXPECT_FALSE(registry.traits("Elbow").mirrorsTrackedCaches);
}

TEST(DirectoryRegistry, UnknownNameFailsListingAlternatives)
{
    const DirectoryParams p = paramsFor("NoSuchOrganization");
    try {
        DirectoryRegistry::instance().build("NoSuchOrganization", p);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("NoSuchOrganization"), std::string::npos);
        // The error teaches the caller what exists.
        EXPECT_NE(message.find("Cuckoo"), std::string::npos);
        EXPECT_NE(message.find("Tagless"), std::string::npos);
    }
    EXPECT_THROW(DirectoryRegistry::instance().traits("NoSuchOrganization"),
                 std::invalid_argument);
    EXPECT_THROW(makeDirectory(paramsFor("NoSuchOrganization")),
                 std::invalid_argument);
}

TEST(DirectoryRegistry, DuplicateRegistrationIsRejected)
{
    EXPECT_THROW(DirectoryRegistry::instance().registerOrganization(
                     "Cuckoo", DirectoryTraits{},
                     [](const DirectoryParams &) {
                         return std::unique_ptr<Directory>();
                     }),
                 std::logic_error);
}

TEST(DirectoryRegistry, EnumShimResolvesThroughRegistry)
{
    // The deprecated enum factory and the registry must build the same
    // organization for every enum value.
    for (DirectoryKind kind :
         {DirectoryKind::Cuckoo, DirectoryKind::Sparse,
          DirectoryKind::Skewed, DirectoryKind::DuplicateTag,
          DirectoryKind::InCache, DirectoryKind::Tagless,
          DirectoryKind::Elbow}) {
        DirectoryParams p = paramsFor("");
        p.organization.clear();
        p.kind = kind;
        EXPECT_EQ(p.resolvedOrganization(), directoryKindName(kind));
        auto via_enum = makeDirectory(p);
        auto via_registry = DirectoryRegistry::instance().build(
            directoryKindName(kind), p);
        ASSERT_NE(via_enum, nullptr);
        ASSERT_NE(via_registry, nullptr);
        EXPECT_EQ(via_enum->name(), via_registry->name());
    }
}

TEST(DirectoryRegistry, OrganizationStringOverridesEnum)
{
    DirectoryParams p = paramsFor("Sparse");
    p.kind = DirectoryKind::Cuckoo; // the string must win
    auto dir = makeDirectory(p);
    ASSERT_NE(dir, nullptr);
    EXPECT_EQ(dir->name().rfind("Sparse", 0), 0u) << dir->name();
}

} // namespace
} // namespace cdir
