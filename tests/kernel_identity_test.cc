/**
 * @file
 * Bit-identity suite for the word-parallel probe kernels.
 *
 * Every hot-path kernel in common/bit_util.hh has a branchy scalar
 * reference twin, selected at runtime by CDIR_FORCE_SCALAR (or
 * setForceScalarKernels). The SoA layout work is purely a performance
 * change, so the two paths must be *bit-identical* in observable
 * behaviour. This suite pins that at three levels:
 *
 *  1. kernel level — randomized findTag/findVacant agreement and
 *     match-mask semantics over adversarial valid/tag patterns;
 *  2. system level — the committed golden-trace tables reproduce
 *     exactly under both paths, across jobs x shards combinations
 *     (sweep-pool parallelism x intra-run slice sharding);
 *  3. stress level — randomized differential-stress replays of every
 *     registered organization yield identical counters on both paths.
 *
 * CI runs this binary twice: once normally and once with
 * CDIR_FORCE_SCALAR=1, so the environment seeding of the switch is
 * exercised as well as the in-process override.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include "common/bit_util.hh"
#include "common/rng.hh"
#include "directory/registry.hh"
#include "sim/cmp_system.hh"
#include "sim/sweep.hh"
#include "workload/workload.hh"

#include "dir_test_util.hh"
#include "golden_trace_util.hh"

namespace cdir {
namespace {

using test::GoldenRow;
using test::goldenReplayConfig;
using test::kGolden;
using test::kGoldenOrganizations;
using test::kGoldenPrivateL2;
using test::kGoldenTraces;
using test::measureGolden;

/** RAII: route kernels through the chosen path, restore on scope exit. */
class ScalarPathGuard
{
  public:
    explicit ScalarPathGuard(bool force) : saved(forceScalarKernels())
    {
        setForceScalarKernels(force);
    }
    ~ScalarPathGuard() { setForceScalarKernels(saved); }

  private:
    bool saved;
};

// --- kernel level ------------------------------------------------------------

/**
 * Random candidate run of width @p n: ~half the slots invalid, tags
 * drawn from a tiny alphabet so duplicate tags (first-match tie-breaks)
 * and valid-but-different slots are all common.
 */
struct CandidateRun
{
    std::vector<Tag> tags;
    std::vector<std::uint8_t> valids;
};

CandidateRun
randomRun(Rng &rng, std::size_t n)
{
    CandidateRun run;
    run.tags.resize(n);
    run.valids.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        run.tags[i] = rng.below(8);
        run.valids[i] = rng.below(2) != 0 ? 1 : 0;
    }
    return run;
}

TEST(KernelIdentity, FindTagAgreesWithScalarReference)
{
    Rng rng(0xf00d);
    for (int iter = 0; iter < 2000; ++iter) {
        const std::size_t n = 1 + rng.below(kKernelWidth);
        const CandidateRun run = randomRun(rng, n);
        const Tag needle = rng.below(8);

        std::size_t kernel, scalar;
        {
            ScalarPathGuard g(false);
            kernel = findTag(run.tags.data(), run.valids.data(), n, needle);
        }
        {
            ScalarPathGuard g(true);
            scalar = findTag(run.tags.data(), run.valids.data(), n, needle);
        }
        ASSERT_EQ(kernel, scalar) << "width " << n << " iter " << iter;
        ASSERT_EQ(scalar,
                  findTagScalar(run.tags.data(), run.valids.data(), n,
                                needle));
    }
}

TEST(KernelIdentity, FindVacantAgreesWithScalarReference)
{
    Rng rng(0xbeef);
    for (int iter = 0; iter < 2000; ++iter) {
        const std::size_t n = 1 + rng.below(kKernelWidth);
        const CandidateRun run = randomRun(rng, n);

        std::size_t kernel, scalar;
        {
            ScalarPathGuard g(false);
            kernel = findVacant(run.valids.data(), n);
        }
        {
            ScalarPathGuard g(true);
            scalar = findVacant(run.valids.data(), n);
        }
        ASSERT_EQ(kernel, scalar) << "width " << n << " iter " << iter;
        ASSERT_EQ(scalar, findVacantScalar(run.valids.data(), n));
    }
}

TEST(KernelIdentity, MatchMaskBitsAreExactlyTheMatches)
{
    Rng rng(0xcafe);
    for (int iter = 0; iter < 2000; ++iter) {
        const std::size_t n = 1 + rng.below(kKernelWidth);
        const CandidateRun run = randomRun(rng, n);
        const Tag needle = rng.below(8);

        const std::uint64_t mask =
            tagMatchMask(run.tags.data(), run.valids.data(), n, needle);
        const std::uint64_t vacant = vacancyMask(run.valids.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
            const bool match =
                run.valids[i] != 0 && run.tags[i] == needle;
            ASSERT_EQ((mask >> i) & 1u, match ? 1u : 0u)
                << "bit " << i << " iter " << iter;
            ASSERT_EQ((vacant >> i) & 1u, run.valids[i] == 0 ? 1u : 0u)
                << "bit " << i << " iter " << iter;
        }
        // No bits past the run width.
        if (n < 64) {
            ASSERT_EQ(mask >> n, 0u);
            ASSERT_EQ(vacant >> n, 0u);
        }
    }
}

// --- system level: golden tables x jobs x shards -----------------------------

void
expectRowEqual(const GoldenRow &got, const GoldenRow &want)
{
    EXPECT_EQ(got.insertions, want.insertions);
    EXPECT_EQ(got.dirHits, want.dirHits);
    EXPECT_EQ(got.forcedEvictions, want.forcedEvictions);
    EXPECT_EQ(got.sharerRemovals, want.sharerRemovals);
    EXPECT_EQ(got.validEntries, want.validEntries);
    EXPECT_EQ(got.cacheMisses, want.cacheMisses);
    EXPECT_EQ(got.sharingInvalidations, want.sharingInvalidations);
    EXPECT_EQ(got.forcedInvalidations, want.forcedInvalidations);
}

/** The committed pin for @p trace x @p organization. */
const GoldenRow &
pinnedRow(const char *trace, const char *organization, CmpConfigKind kind)
{
    const GoldenRow *first = std::begin(kGolden);
    const GoldenRow *last = std::end(kGolden);
    if (kind == CmpConfigKind::PrivateL2) {
        first = std::begin(kGoldenPrivateL2);
        last = std::end(kGoldenPrivateL2);
    }
    for (const GoldenRow *row = first; row != last; ++row)
        if (std::string(row->trace) == trace &&
            std::string(row->organization) == organization)
            return *row;
    ADD_FAILURE() << "no pinned row for " << trace << " x "
                  << organization;
    static GoldenRow missing{};
    return missing;
}

/**
 * Replay the full trace x organization grid on a @p jobs-thread sweep
 * pool with @p shards lanes per replay, under the scalar or kernel
 * path, and pin every cell against the committed Shared-L2 table.
 */
void
pinGridUnderPath(bool force_scalar, unsigned jobs, unsigned shards)
{
    SCOPED_TRACE(std::string(force_scalar ? "scalar" : "kernel") +
                 " path, jobs=" + std::to_string(jobs) +
                 " shards=" + std::to_string(shards));
    ScalarPathGuard guard(force_scalar);

    struct Cell
    {
        const char *trace;
        const char *org;
    };
    std::vector<Cell> cells;
    for (const char *trace : kGoldenTraces)
        for (const char *org : kGoldenOrganizations)
            cells.push_back({trace, org});

    const SweepRunner runner(SweepOptions{jobs, ""});
    const std::vector<GoldenRow> rows = runner.map<GoldenRow>(
        cells.size(), [&](std::size_t i) {
            return measureGolden(cells[i].trace, cells[i].org,
                                 CmpConfigKind::SharedL2, shards);
        });

    for (std::size_t i = 0; i < cells.size(); ++i) {
        SCOPED_TRACE(std::string(cells[i].trace) + " x " + cells[i].org);
        expectRowEqual(rows[i],
                       pinnedRow(cells[i].trace, cells[i].org,
                                 CmpConfigKind::SharedL2));
    }
}

TEST(KernelIdentity, GoldenTablesReproduceAtJobsShardsCombinations)
{
    for (const bool force_scalar : {false, true})
        for (const unsigned jobs : {1u, 2u})
            for (const unsigned shards : {1u, 2u, 4u})
                pinGridUnderPath(force_scalar, jobs, shards);
}

TEST(KernelIdentity, PrivateL2TableReproducesUnderScalarPath)
{
    // The Private-L2 pins exercise the wider 4-way tracked-assoc
    // DuplicateTag regions and the 8-way sparse probes; one serial
    // scalar sweep over them guards those kernel widths.
    ScalarPathGuard guard(true);
    for (const char *trace : kGoldenTraces)
        for (const char *org : kGoldenOrganizations) {
            SCOPED_TRACE(std::string(trace) + " x " + org);
            const GoldenRow got = measureGolden(
                trace, org, CmpConfigKind::PrivateL2, 1);
            expectRowEqual(
                got, pinnedRow(trace, org, CmpConfigKind::PrivateL2));
        }
}

// --- DuplicateTag chunk-occupancy skip ---------------------------------------

/**
 * Direct-slice differential stress aimed at DuplicateTag's per-set
 * chunk-occupancy summary: the kernel wide-compare and the existence
 * probe skip 64-frame chunks with no valid frames, which must be
 * outcome-invariant. The stream concentrates on a few dense sets and
 * leaves the rest sparse or empty, and keeps removing sharers so
 * regions empty out and refill — the shapes where a stale summary
 * counter would surface as a missed (or phantom) holder.
 */
TEST(KernelIdentity, DuplicateTagOccupancySkipIsOutcomeInvariant)
{
    // 16 and 24 tracked caches x assoc 4: one exactly-full 64-frame
    // chunk per set, then a 96-frame set spanning a partial chunk.
    for (const unsigned num_caches : {16u, 24u}) {
        SCOPED_TRACE("caches=" + std::to_string(num_caches));
        DirectoryParams params;
        params.organization = "DuplicateTag";
        params.numCaches = num_caches;
        params.sets = 64;
        params.trackedCacheAssoc = 4;
        const auto kernel_dir = makeDirectory(params);
        const auto scalar_dir = makeDirectory(params);

        Rng rng(0x5eedULL + num_caches);
        std::vector<Tag> live;
        for (int iter = 0; iter < 20000; ++iter) {
            const std::uint64_t op = rng.below(100);
            if (op < 55 || live.empty()) {
                // Mostly 4 dense sets; the other 60 stay sparse so the
                // skip actually fires.
                const Tag set = rng.below(2) != 0 ? rng.below(4)
                                                  : rng.below(64);
                const Tag tag = set | (rng.below(16) << 6);
                const auto cache =
                    static_cast<CacheId>(rng.below(num_caches));
                const bool is_write = rng.below(4) == 0;
                DirAccessResult k, s;
                {
                    ScalarPathGuard g(false);
                    k = test::accessDir(*kernel_dir, tag, cache, is_write);
                }
                {
                    ScalarPathGuard g(true);
                    s = test::accessDir(*scalar_dir, tag, cache, is_write);
                }
                ASSERT_EQ(k.hit, s.hit) << "iter " << iter;
                ASSERT_EQ(k.inserted, s.inserted) << "iter " << iter;
                ASSERT_EQ(k.hadSharerInvalidations,
                          s.hadSharerInvalidations)
                    << "iter " << iter;
                ASSERT_EQ(k.sharerInvalidations, s.sharerInvalidations)
                    << "iter " << iter;
                live.push_back(tag);
            } else if (op < 85) {
                // Remove a sharer of a recently-touched tag; drains the
                // dense sets toward (and through) empty.
                const std::size_t at = rng.below(live.size());
                const Tag tag = live[at];
                const auto cache =
                    static_cast<CacheId>(rng.below(num_caches));
                {
                    ScalarPathGuard g(false);
                    kernel_dir->removeSharer(tag, cache);
                }
                {
                    ScalarPathGuard g(true);
                    scalar_dir->removeSharer(tag, cache);
                }
                live[at] = live.back();
                live.pop_back();
            } else {
                // Probe both forms: existence-only (the chunk-skipping
                // findTag walk) and with sharer collection.
                const Tag set = rng.below(64);
                const Tag tag = set | (rng.below(16) << 6);
                bool ke, se;
                DynamicBitset kb(num_caches), sb(num_caches);
                bool ks, ss;
                {
                    ScalarPathGuard g(false);
                    ke = kernel_dir->probe(tag);
                    ks = kernel_dir->probe(tag, &kb);
                }
                {
                    ScalarPathGuard g(true);
                    se = scalar_dir->probe(tag);
                    ss = scalar_dir->probe(tag, &sb);
                }
                ASSERT_EQ(ke, se) << "iter " << iter;
                ASSERT_EQ(ks, ss) << "iter " << iter;
                ASSERT_TRUE(kb == sb) << "iter " << iter;
            }
        }

        // Full-state agreement after the stream: every counter and
        // every set's holder sets, including the all-empty ones.
        const DirectoryStats &k = kernel_dir->stats();
        const DirectoryStats &s = scalar_dir->stats();
        EXPECT_EQ(k.lookups, s.lookups);
        EXPECT_EQ(k.hits, s.hits);
        EXPECT_EQ(k.insertions, s.insertions);
        EXPECT_EQ(k.sharerAdds, s.sharerAdds);
        EXPECT_EQ(k.writeUpgrades, s.writeUpgrades);
        EXPECT_EQ(k.sharerRemovals, s.sharerRemovals);
        EXPECT_EQ(k.forcedEvictions, s.forcedEvictions);
        EXPECT_EQ(k.forcedBlockInvalidations, s.forcedBlockInvalidations);
        EXPECT_EQ(kernel_dir->validEntries(), scalar_dir->validEntries());
        for (Tag set = 0; set < 64; ++set)
            for (Tag high = 0; high < 16; ++high) {
                const Tag tag = set | (high << 6);
                DynamicBitset kb(num_caches), sb(num_caches);
                ScalarPathGuard g(false);
                const bool kf = kernel_dir->probe(tag, &kb);
                setForceScalarKernels(true);
                const bool sf = scalar_dir->probe(tag, &sb);
                ASSERT_EQ(kf, sf) << "set " << set << " high " << high;
                ASSERT_TRUE(kb == sb)
                    << "set " << set << " high " << high;
            }
    }
}

// --- stress level: differential replays across all organizations -------------

/** Flat scalar-counter snapshot of one stress replay. */
struct StressCounters
{
    std::uint64_t accesses, cacheHits, cacheMisses, writeUpgrades;
    std::uint64_t cacheEvictions, sharingInvalidations,
        forcedInvalidations;
    std::uint64_t lookups, dirHits, insertions, sharerAdds,
        sharerRemovals;
    std::uint64_t entryFrees, forcedEvictions, forcedBlockInvalidations,
        insertFailures;

    bool
    operator==(const StressCounters &o) const = default;
};

/** Randomized sharing profile (mirrors property_test's stress drawing). */
WorkloadParams
stressProfile(std::uint64_t seed)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    WorkloadParams wl;
    wl.name = "identity-stress-" + std::to_string(seed);
    wl.numCores = 4;
    wl.seed = seed;
    wl.codeBlocks = 32 + rng.below(256);
    wl.sharedBlocks = 64 + rng.below(1024);
    wl.privateBlocksPerCore = 32 + rng.below(512);
    wl.instructionFraction = 0.1 + 0.4 * rng.uniform();
    wl.sharedDataFraction = 0.2 + 0.5 * rng.uniform();
    wl.writeFraction = 0.05 + 0.4 * rng.uniform();
    wl.codeTheta = rng.uniform();
    wl.sharedTheta = rng.uniform();
    wl.privateTheta = rng.uniform();
    return wl;
}

StressCounters
replayStress(const std::string &organization, const WorkloadParams &wl,
             unsigned shards)
{
    CmpSystem system(
        goldenReplayConfig(organization, CmpConfigKind::SharedL2));
    system.setShards(shards);
    SyntheticWorkload gen(wl);
    system.run(gen, 20000);

    const CmpStats sys = system.stats();
    const DirectoryStats dir = system.aggregateDirectoryStats();
    return StressCounters{sys.accesses,
                          sys.cacheHits,
                          sys.cacheMisses,
                          sys.writeUpgrades,
                          sys.cacheEvictions,
                          sys.sharingInvalidations,
                          sys.forcedInvalidations,
                          dir.lookups,
                          dir.hits,
                          dir.insertions,
                          dir.sharerAdds,
                          dir.sharerRemovals,
                          dir.entryFrees,
                          dir.forcedEvictions,
                          dir.forcedBlockInvalidations,
                          dir.insertFailures};
}


TEST(KernelIdentity, DifferentialStressAgreesAcrossPaths)
{
    const DirectoryRegistry &registry = DirectoryRegistry::instance();
    for (const std::uint64_t seed : {std::uint64_t{3}, std::uint64_t{17}}) {
        const WorkloadParams wl = stressProfile(seed);
        for (const std::string &org : registry.names())
            for (const unsigned shards : {1u, 4u}) {
                SCOPED_TRACE("seed " + std::to_string(seed) + " " + org +
                             " shards=" + std::to_string(shards));
                StressCounters kernel, scalar;
                {
                    ScalarPathGuard g(false);
                    kernel = replayStress(org, wl, shards);
                }
                {
                    ScalarPathGuard g(true);
                    scalar = replayStress(org, wl, shards);
                }
                EXPECT_TRUE(kernel == scalar)
                    << "kernel/scalar counter divergence";
            }
    }
}

} // namespace
} // namespace cdir
