/**
 * @file
 * Unit and property tests for the set-associative cache model.
 */

#include <gtest/gtest.h>

#include <set>

#include "cache/cache.hh"
#include "common/rng.hh"

namespace cdir {
namespace {

TEST(Cache, MissThenHit)
{
    SetAssocCache cache(CacheConfig{16, 2});
    auto first = cache.access(100, false);
    EXPECT_FALSE(first.hit);
    EXPECT_FALSE(first.victim.has_value());
    auto second = cache.access(100, false);
    EXPECT_TRUE(second.hit);
    EXPECT_TRUE(cache.contains(100));
}

TEST(Cache, WriteSetsDirty)
{
    SetAssocCache cache(CacheConfig{16, 2});
    cache.access(5, true);
    EXPECT_TRUE(cache.isDirty(5));
}

TEST(Cache, ReadAllocatesClean)
{
    SetAssocCache cache(CacheConfig{16, 2});
    cache.access(5, false);
    EXPECT_FALSE(cache.isDirty(5));
}

TEST(Cache, WriteHitOnCleanReportsUpgrade)
{
    SetAssocCache cache(CacheConfig{16, 2});
    cache.access(5, false);
    auto res = cache.access(5, true);
    EXPECT_TRUE(res.hit);
    EXPECT_TRUE(res.writeHitClean);
    EXPECT_TRUE(cache.isDirty(5));
    // Second write: already dirty, no upgrade.
    auto res2 = cache.access(5, true);
    EXPECT_FALSE(res2.writeHitClean);
}

TEST(Cache, EvictsLruWithinSet)
{
    SetAssocCache cache(CacheConfig{4, 2});
    // Three blocks mapping to set 0 (multiples of numSets).
    cache.access(0, false);
    cache.access(4, false);
    cache.access(0, false); // make block 0 MRU
    auto res = cache.access(8, false);
    EXPECT_FALSE(res.hit);
    ASSERT_TRUE(res.victim.has_value());
    EXPECT_EQ(*res.victim, 4u);
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.contains(4));
}

TEST(Cache, EvictionReportsDirtyVictim)
{
    SetAssocCache cache(CacheConfig{4, 1});
    cache.access(0, true);
    auto res = cache.access(4, false);
    ASSERT_TRUE(res.victim.has_value());
    EXPECT_EQ(*res.victim, 0u);
    EXPECT_TRUE(res.victimDirty);
}

TEST(Cache, InvalidateRemovesBlock)
{
    SetAssocCache cache(CacheConfig{16, 2});
    cache.access(7, true);
    EXPECT_TRUE(cache.invalidate(7));
    EXPECT_FALSE(cache.contains(7));
    EXPECT_FALSE(cache.invalidate(7)); // second time: not resident
    EXPECT_EQ(cache.residentBlocks(), 0u);
}

TEST(Cache, CleanseDowngradesDirtyBlock)
{
    SetAssocCache cache(CacheConfig{16, 2});
    cache.access(7, true);
    cache.cleanse(7);
    EXPECT_TRUE(cache.contains(7));
    EXPECT_FALSE(cache.isDirty(7));
}

TEST(Cache, ResidentCountTracksContents)
{
    SetAssocCache cache(CacheConfig{8, 2});
    EXPECT_EQ(cache.residentBlocks(), 0u);
    for (BlockAddr a = 0; a < 8; ++a)
        cache.access(a, false);
    EXPECT_EQ(cache.residentBlocks(), 8u);
    cache.invalidate(3);
    EXPECT_EQ(cache.residentBlocks(), 7u);
}

TEST(Cache, CapacityNeverExceeded)
{
    SetAssocCache cache(CacheConfig{8, 2});
    Rng rng(1);
    for (int i = 0; i < 10000; ++i)
        cache.access(rng.below(1000), rng.chance(0.3));
    EXPECT_LE(cache.residentBlocks(), cache.capacityBlocks());
}

TEST(Cache, ResidentAddressesMatchesContains)
{
    SetAssocCache cache(CacheConfig{8, 4});
    Rng rng(2);
    for (int i = 0; i < 500; ++i)
        cache.access(rng.below(200), false);
    const auto resident = cache.residentAddresses();
    EXPECT_EQ(resident.size(), cache.residentBlocks());
    for (BlockAddr a : resident)
        EXPECT_TRUE(cache.contains(a));
}

TEST(Cache, SetsAreIndependent)
{
    SetAssocCache cache(CacheConfig{4, 1});
    cache.access(0, false); // set 0
    cache.access(1, false); // set 1
    cache.access(2, false); // set 2
    cache.access(3, false); // set 3
    EXPECT_EQ(cache.residentBlocks(), 4u);
    // Filling set 0 does not disturb the others.
    cache.access(4, false);
    EXPECT_FALSE(cache.contains(0));
    EXPECT_TRUE(cache.contains(1));
    EXPECT_TRUE(cache.contains(2));
    EXPECT_TRUE(cache.contains(3));
}

// Property sweep over geometries: an access pattern of exactly
// `assoc` blocks per set never evicts.
class CacheGeometry
    : public testing::TestWithParam<std::tuple<std::size_t, unsigned>>
{};

TEST_P(CacheGeometry, FullSetResidesWithoutEviction)
{
    const auto [sets, assoc] = GetParam();
    SetAssocCache cache(CacheConfig{sets, assoc});
    for (unsigned w = 0; w < assoc; ++w) {
        for (std::size_t s = 0; s < sets; ++s) {
            auto res = cache.access(s + w * sets, false);
            EXPECT_FALSE(res.victim.has_value());
        }
    }
    EXPECT_EQ(cache.residentBlocks(), sets * assoc);
    // Every block still hits.
    for (unsigned w = 0; w < assoc; ++w)
        for (std::size_t s = 0; s < sets; ++s)
            EXPECT_TRUE(cache.access(s + w * sets, false).hit);
}

TEST_P(CacheGeometry, LruIsExactWithinSet)
{
    const auto [sets, assoc] = GetParam();
    SetAssocCache cache(CacheConfig{sets, assoc});
    // Touch assoc+1 blocks of set 0 in order; the first must be evicted.
    for (unsigned w = 0; w <= assoc; ++w)
        cache.access(BlockAddr{w} * sets, false);
    EXPECT_FALSE(cache.contains(0));
    for (unsigned w = 1; w <= assoc; ++w)
        EXPECT_TRUE(cache.contains(BlockAddr{w} * sets));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    testing::Combine(testing::Values(std::size_t{1}, std::size_t{8},
                                     std::size_t{64}, std::size_t{512}),
                     testing::Values(1u, 2u, 4u, 16u)));

TEST(CacheConfigStruct, CapacityIsSetsTimesWays)
{
    EXPECT_EQ((CacheConfig{512, 2}).capacityBlocks(), 1024u);
    EXPECT_EQ((CacheConfig{1024, 16}).capacityBlocks(), 16384u);
}

} // namespace
} // namespace cdir
