/**
 * @file
 * Campaign-layer coverage (sim/campaign.hh):
 *
 *  - ExperimentResult JSON round-trips *exactly* (write-parse-write is
 *    a fixed point), including interval telemetry and cost-model
 *    latency histograms — the property the byte-identical merge rests
 *    on;
 *  - manifests round-trip, cell ids are content hashes (any knob edit
 *    changes the id), and the cell enumeration matches
 *    SweepRunner::runMany order;
 *  - merged shards render byte-identically to the single-process
 *    reference at --jobs=1 and --jobs=4, over a 2-organization grid
 *    with the mesh cost model and interval telemetry on;
 *  - resume: a completed prefix is skipped, torn .tmp files from a
 *    "killed worker" are swept, and the final document is unchanged;
 *  - kill-and-resume through the real campaign_tool binary (fork/exec
 *    + SIGKILL), skipped where the tool is not built (CDIR_BUILD_BENCH
 *    =OFF, e.g. the ASan job).
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "sim/campaign.hh"

namespace cdir {
namespace {

namespace fs = std::filesystem;

/** Fresh scratch directory under the system temp root. */
std::string
scratchDir(const std::string &tag)
{
    const fs::path dir = fs::temp_directory_path() /
                         ("cdir_campaign_" + std::to_string(::getpid()) +
                          "_" + tag);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/**
 * The acceptance grid: 2 organizations x 2 workloads, timed under the
 * mesh cost model with interval telemetry on — small enough to run
 * many times, wide enough that every serialized field is non-trivial.
 */
SweepSpec
campaignGrid()
{
    SweepSpec spec;
    CmpConfig base = CmpConfig::paperConfig(CmpConfigKind::SharedL2, 4);
    base.privateCache = CacheConfig{64, 2};

    CmpConfig cuckoo = base;
    cuckoo.directory = cuckooSliceParams(4, 64);
    spec.config("Cuckoo 4x64", cuckoo);
    CmpConfig sparse = base;
    sparse.directory = sparseSliceParams(8, 32);
    spec.config("Sparse 8x32", sparse);

    for (const std::uint64_t seed : {7u, 21u}) {
        WorkloadParams wl;
        wl.name = "wl" + std::to_string(seed);
        wl.numCores = 4;
        wl.seed = seed;
        wl.codeBlocks = 128;
        wl.sharedBlocks = 512;
        wl.privateBlocksPerCore = 256;
        spec.workload(wl.name, wl);
    }

    ExperimentOptions opts;
    opts.warmupAccesses = 8000;
    opts.measureAccesses = 8000;
    opts.occupancySampleEvery = 1000;
    opts.intervalAccesses = 2000;
    opts.costModel = "mesh";
    spec.options("mesh", opts);
    return spec;
}

CampaignManifest
gridManifest()
{
    const SweepSpec specs[] = {campaignGrid()};
    return buildCampaignManifest(specs, SweepRunner(SweepOptions{1, ""}),
                                 "campaign_test");
}

/** The single-process reference document for @p manifest. */
std::string
referenceJson(const CampaignManifest &manifest, unsigned jobs = 1)
{
    const SweepRunner runner(SweepOptions{jobs, ""});
    return campaignResultsToJson(manifest,
                                 runCampaignInProcess(manifest, runner));
}

// --- result serialization ----------------------------------------------------

TEST(CampaignResultJson, WriteParseWriteIsAFixedPoint)
{
    const CampaignManifest manifest = gridManifest();
    ASSERT_FALSE(manifest.cells.empty());
    // Timed + interval-telemetry cell: every optional section present.
    const CampaignCell &cell = manifest.cells.front();
    const ExperimentResult result =
        runExperiment(cell.config, cell.workload, cell.options);
    EXPECT_FALSE(result.intervals.windows.empty());
    EXPECT_GT(result.latencyP50, 0u);

    const std::string once = experimentResultToJson(result);
    const ExperimentResult reparsed = parseExperimentResult(once);
    EXPECT_EQ(experimentResultToJson(reparsed), once);
    // Spot-check a few reconstructed fields for equality, not just
    // serialization stability.
    EXPECT_EQ(reparsed.workload, result.workload);
    EXPECT_EQ(reparsed.organization, result.organization);
    EXPECT_EQ(reparsed.avgOccupancy, result.avgOccupancy);
    EXPECT_EQ(reparsed.directory.lookups, result.directory.lookups);
    EXPECT_EQ(reparsed.system.latency.count(),
              result.system.latency.count());
    EXPECT_EQ(reparsed.intervals.windows.size(),
              result.intervals.windows.size());
    EXPECT_EQ(reparsed.latencyP999, result.latencyP999);
    // Footprint accounting: the deterministic estimate checkpoints;
    // the environmental fields (peak RSS, wall-clock) deliberately do
    // not — a loaded cell reports 0 for them.
    EXPECT_GT(result.estimatedBytes, 0u);
    EXPECT_EQ(reparsed.estimatedBytes, result.estimatedBytes);
    EXPECT_GT(result.peakRssBytes, 0u);
    EXPECT_EQ(reparsed.peakRssBytes, 0u);
    EXPECT_EQ(reparsed.wallSeconds, 0.0);
}

TEST(CampaignResultJson, PreFootprintShardsStillParse)
{
    // Shards written before estimated_bytes existed lack the key; the
    // parser must treat it as optional instead of rejecting the file.
    const SweepSpec spec = campaignGrid();
    ExperimentOptions opts;
    opts.warmupAccesses = 2000;
    opts.measureAccesses = 2000;
    const ExperimentResult result =
        runExperiment(spec.configs()[0].config,
                      spec.workloads()[0].workload, opts);
    std::string json = experimentResultToJson(result);
    const std::string key = ", \"estimated_bytes\": ";
    const std::size_t at = json.find(key);
    ASSERT_NE(at, std::string::npos);
    const std::size_t end = json.find_first_of(",}", at + key.size());
    json.erase(at, end - at);
    const ExperimentResult reparsed = parseExperimentResult(json);
    EXPECT_EQ(reparsed.estimatedBytes, 0u);
    EXPECT_EQ(reparsed.directory.lookups, result.directory.lookups);
}

TEST(CampaignResultJson, UntimedResultRoundTripsToo)
{
    const SweepSpec spec = campaignGrid();
    ExperimentOptions opts;
    opts.warmupAccesses = 4000;
    opts.measureAccesses = 4000;
    const ExperimentResult result =
        runExperiment(spec.configs()[0].config,
                      spec.workloads()[0].workload, opts);
    const std::string once = experimentResultToJson(result);
    EXPECT_EQ(experimentResultToJson(parseExperimentResult(once)), once);
}

// --- manifests ---------------------------------------------------------------

TEST(CampaignManifest, EnumeratesCellsInRunManyOrderWithStableIds)
{
    const CampaignManifest manifest = gridManifest();
    const SweepSpec spec = campaignGrid();
    ASSERT_EQ(manifest.cells.size(), spec.cellCount());
    EXPECT_EQ(manifest.specCount, 1u);
    EXPECT_EQ(manifest.tool, "campaign_test");
    // Options-major within workload within config, ids content-stable.
    EXPECT_EQ(manifest.cells[0].label(), "Cuckoo 4x64/wl7/mesh");
    EXPECT_EQ(manifest.cells[1].label(), "Cuckoo 4x64/wl21/mesh");
    EXPECT_EQ(manifest.cells[2].label(), "Sparse 8x32/wl7/mesh");
    for (const CampaignCell &cell : manifest.cells) {
        EXPECT_EQ(cell.id.size(), 16u);
        EXPECT_EQ(cell.id, campaignCellId(cell));
    }
    // Rebuilding yields the same ids (stability across processes).
    const CampaignManifest again = gridManifest();
    for (std::size_t i = 0; i < manifest.cells.size(); ++i)
        EXPECT_EQ(manifest.cells[i].id, again.cells[i].id);
}

TEST(CampaignManifest, AnyKnobEditChangesTheCellId)
{
    const CampaignManifest manifest = gridManifest();
    CampaignCell cell = manifest.cells.front();
    const std::string original = campaignCellId(cell);

    CampaignCell edited = cell;
    edited.options.measureAccesses += 1;
    EXPECT_NE(campaignCellId(edited), original);
    edited = cell;
    edited.workload.seed += 1;
    EXPECT_NE(campaignCellId(edited), original);
    edited = cell;
    edited.config.directory.ways += 1;
    EXPECT_NE(campaignCellId(edited), original);
    edited = cell;
    edited.options.costModel = "fixed";
    EXPECT_NE(campaignCellId(edited), original);
}

TEST(CampaignManifest, FileRoundTripPreservesEveryCell)
{
    const std::string dir = scratchDir("manifest_roundtrip");
    const CampaignManifest manifest = gridManifest();
    const std::string path = dir + "/manifest.json";
    writeCampaignManifest(manifest, path);
    const CampaignManifest loaded = readCampaignManifest(path);
    ASSERT_EQ(loaded.cells.size(), manifest.cells.size());
    EXPECT_EQ(loaded.tool, manifest.tool);
    EXPECT_EQ(loaded.specCount, manifest.specCount);
    for (std::size_t i = 0; i < manifest.cells.size(); ++i) {
        EXPECT_EQ(loaded.cells[i].id, manifest.cells[i].id);
        EXPECT_EQ(loaded.cells[i].label(), manifest.cells[i].label());
    }
    // A tampered cell id is rejected, not silently accepted.
    std::string text = slurp(path);
    const std::size_t at = text.find(manifest.cells[0].id);
    ASSERT_NE(at, std::string::npos);
    text[at] = text[at] == '0' ? '1' : '0';
    EXPECT_THROW(parseCampaignManifest(text), std::runtime_error);
    fs::remove_all(dir);
}

TEST(CampaignManifest, RespectsTheRunnersFilter)
{
    const SweepSpec specs[] = {campaignGrid()};
    const CampaignManifest manifest = buildCampaignManifest(
        specs, SweepRunner(SweepOptions{1, "Cuckoo"}), "campaign_test");
    ASSERT_EQ(manifest.cells.size(), 2u);
    for (const CampaignCell &cell : manifest.cells)
        EXPECT_EQ(cell.configLabel, "Cuckoo 4x64");
}

// --- shards / merge ----------------------------------------------------------

TEST(CampaignShards, MissingShardReadsFalseTornShardThrows)
{
    const std::string dir = scratchDir("shard_io");
    ExperimentResult out;
    EXPECT_FALSE(readCampaignShard(dir, "00000000deadbeef", out));
    // A torn (truncated) document at the final name must throw, never
    // parse as an empty result.
    std::ofstream(campaignShardPath(dir, "00000000deadbeef"))
        << "{\"format\": \"cdir-campaign-shard\", \"ver";
    EXPECT_THROW(readCampaignShard(dir, "00000000deadbeef", out),
                 std::runtime_error);
    fs::remove_all(dir);
}

TEST(CampaignMerge, ByteIdenticalToSingleProcessAtJobs1AndJobs4)
{
    const CampaignManifest manifest = gridManifest();
    const std::string expected = referenceJson(manifest);
    // The reference itself is jobs-invariant (sweep determinism).
    EXPECT_EQ(referenceJson(manifest, 4), expected);

    for (const unsigned jobs : {1u, 4u}) {
        const std::string dir =
            scratchDir("merge_jobs" + std::to_string(jobs));
        const CampaignRunReport report = runCampaignCells(
            manifest, dir, 0, manifest.cells.size(), jobs);
        EXPECT_EQ(report.ran, manifest.cells.size());
        EXPECT_EQ(report.failed, 0u);
        const std::string merged = campaignResultsToJson(
            manifest, mergeCampaignShards(manifest, dir));
        EXPECT_EQ(merged, expected) << "jobs=" << jobs;
        fs::remove_all(dir);
    }
}

TEST(CampaignMerge, ParseResultsValidatesAgainstTheGrid)
{
    const CampaignManifest manifest = gridManifest();
    const std::string doc = referenceJson(manifest);
    // Round-trips against the matching grid...
    const auto groups = parseCampaignResults(manifest, doc);
    EXPECT_EQ(campaignResultsToJson(manifest, groups), doc);
    // ...but an edited grid (different cell ids) rejects the document.
    const SweepSpec specs[] = {campaignGrid()};
    CampaignManifest edited = buildCampaignManifest(
        specs, SweepRunner(SweepOptions{1, ""}), "campaign_test");
    edited.cells[0].options.measureAccesses += 1;
    edited.cells[0].id = campaignCellId(edited.cells[0]);
    EXPECT_THROW(parseCampaignResults(edited, doc), std::runtime_error);
    // A foreign tool name is rejected too.
    CampaignManifest renamed = manifest;
    renamed.tool = "fig12";
    EXPECT_THROW(parseCampaignResults(renamed, doc), std::runtime_error);
}

TEST(CampaignMerge, IncompleteCampaignThrowsListingMissingCells)
{
    const CampaignManifest manifest = gridManifest();
    const std::string dir = scratchDir("merge_incomplete");
    runCampaignCells(manifest, dir, 0, 1, 1);
    try {
        mergeCampaignShards(manifest, dir);
        FAIL() << "merge of an incomplete campaign must throw";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find(manifest.cells[1].id), std::string::npos)
            << what;
    }
    fs::remove_all(dir);
}

// --- resume ------------------------------------------------------------------

TEST(CampaignResume, SkipsDoneCellsSweepsTornTmpsKeepsBytesIdentical)
{
    const CampaignManifest manifest = gridManifest();
    const std::string expected = referenceJson(manifest);
    const std::string dir = scratchDir("resume");
    const std::size_t half = manifest.cells.size() / 2;
    ASSERT_GT(half, 0u);

    // First run dies after completing a prefix; the "killed worker"
    // left a torn temporary for the cell it was computing.
    CampaignRunReport report = runCampaignCells(manifest, dir, 0, half, 1);
    EXPECT_EQ(report.ran, half);
    const std::string torn =
        campaignShardPath(dir, manifest.cells[half].id) + ".tmp.99999";
    std::ofstream(torn) << "{\"format\": \"cdir-campaign-sha";
    ASSERT_TRUE(fs::exists(torn));

    CampaignStatus status = campaignStatus(manifest, dir);
    EXPECT_EQ(status.done, half);
    EXPECT_EQ(status.missing.size(), manifest.cells.size() - half);

    // Resume over the full range: the prefix is skipped, the torn tmp
    // swept, and the merged document is byte-identical to the
    // single-process reference.
    report = runCampaignCells(manifest, dir, 0, manifest.cells.size(), 2);
    EXPECT_EQ(report.skipped, half);
    EXPECT_EQ(report.ran, manifest.cells.size() - half);
    EXPECT_EQ(report.failed, 0u);
    EXPECT_FALSE(fs::exists(torn));
    for (const auto &entry : fs::directory_iterator(dir))
        EXPECT_EQ(entry.path().string().find(".tmp."), std::string::npos)
            << entry.path();
    EXPECT_EQ(campaignResultsToJson(manifest,
                                    mergeCampaignShards(manifest, dir)),
              expected);
    fs::remove_all(dir);
}

// --- kill-and-resume through the real tool binary ----------------------------

#ifdef CDIR_CAMPAIGN_TOOL

/** exec the campaign tool; return its wait() status. */
int
runTool(const std::vector<std::string> &args, pid_t *out_pid = nullptr,
        unsigned kill_after_ms = 0)
{
    const pid_t pid = ::fork();
    if (pid == 0) {
        std::vector<char *> argv;
        static char tool[] = CDIR_CAMPAIGN_TOOL;
        argv.push_back(tool);
        std::vector<std::string> owned = args;
        for (std::string &arg : owned)
            argv.push_back(arg.data());
        argv.push_back(nullptr);
        ::execv(CDIR_CAMPAIGN_TOOL, argv.data());
        ::_exit(127);
    }
    if (out_pid != nullptr)
        *out_pid = pid;
    if (kill_after_ms != 0) {
        ::usleep(kill_after_ms * 1000);
        ::kill(pid, SIGKILL);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    return status;
}

TEST(CampaignTool, KillAndResumeMergesByteIdenticalToLocal)
{
    const CampaignManifest manifest = gridManifest();
    const std::string expected = referenceJson(manifest);
    const std::string dir = scratchDir("tool_kill_resume");
    const std::string manifest_path = dir + "/manifest.json";
    writeCampaignManifest(manifest, manifest_path);

    // Kill the first run mid-campaign (whenever the signal lands —
    // before, between, or inside cells, the shard directory must stay
    // consistent: complete shards plus at most stale tmps).
    const int killed = runTool({"run", "--manifest=" + manifest_path,
                                "--jobs=1"},
                               nullptr, 30);
    (void)killed; // any wait status is legitimate here

    // Resume across two forked workers, to completion.
    int status = runTool({"run", "--manifest=" + manifest_path,
                          "--jobs=1", "--workers=2"});
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);

    status = runTool({"status", "--manifest=" + manifest_path});
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);

    // No torn shard and no stale temporary survives the resume.
    const std::string shard_dir = campaignShardDir(manifest_path);
    std::size_t shards = 0;
    for (const auto &entry : fs::directory_iterator(shard_dir)) {
        EXPECT_EQ(entry.path().string().find(".tmp."), std::string::npos)
            << entry.path();
        ++shards;
    }
    EXPECT_EQ(shards, manifest.cells.size());

    const std::string merged_path = dir + "/merged.json";
    status = runTool({"merge", "--manifest=" + manifest_path,
                      "--out=" + merged_path});
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);
    EXPECT_EQ(slurp(merged_path), expected);

    // The tool's own single-process reference emits the same bytes.
    const std::string local_path = dir + "/local.json";
    status = runTool({"local", "--manifest=" + manifest_path,
                      "--jobs=2", "--out=" + local_path});
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);
    EXPECT_EQ(slurp(local_path), expected);
    fs::remove_all(dir);
}

#else // !CDIR_CAMPAIGN_TOOL

TEST(CampaignTool, KillAndResumeMergesByteIdenticalToLocal)
{
    GTEST_SKIP() << "campaign_tool not built (CDIR_BUILD_BENCH=OFF)";
}

#endif

} // namespace
} // namespace cdir
