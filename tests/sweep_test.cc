/**
 * @file
 * Sweep-engine coverage:
 *
 *  - ThreadPool runs every submitted task and parallelFor propagates
 *    the first exception;
 *  - a grid run with --jobs 1 and --jobs 8 yields *bit-identical*
 *    ExperimentResult metrics in the same cell order (the determinism
 *    contract: every cell owns its CmpSystem and workload RNG);
 *  - two concurrent runExperiment calls on the same organization name
 *    match the serial baseline (no shared mutable state behind the
 *    registry or hash/Zipf machinery);
 *  - the comma-OR cell filter and the CSV/JSON reporters behave.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "common/thread_pool.hh"
#include "sim/sweep.hh"

namespace cdir {
namespace {

// --- thread pool -------------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> sum{0};
    for (int i = 1; i <= 100; ++i)
        pool.submit([&sum, i] { sum += i; });
    pool.wait();
    EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&ran] { ++ran; });
    }
    EXPECT_EQ(ran.load(), 50);
}

TEST(ParallelFor, CoversEveryIndexAtAnyWidth)
{
    for (unsigned jobs : {1u, 3u, 8u}) {
        std::vector<int> hits(257, 0);
        parallelFor(jobs, hits.size(),
                    [&](std::size_t i) { hits[i]++; });
        for (std::size_t i = 0; i < hits.size(); ++i)
            ASSERT_EQ(hits[i], 1) << "jobs " << jobs << " index " << i;
    }
}

TEST(ParallelFor, PropagatesFirstException)
{
    EXPECT_THROW(parallelFor(4, 64,
                             [](std::size_t i) {
                                 if (i == 13)
                                     throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
}

// --- task groups (the shard scheduler's fork/join barrier) -------------------

TEST(TaskGroup, WaitIsAGroupLocalBarrier)
{
    ThreadPool pool(3);
    TaskGroup group(pool);
    std::atomic<int> sum{0};
    // Several fork/join rounds on one persistent pool.
    for (int round = 0; round < 20; ++round) {
        for (int i = 0; i < 7; ++i)
            group.run([&sum] { ++sum; });
        group.wait();
        ASSERT_EQ(sum.load(), (round + 1) * 7) << "round " << round;
    }
}

TEST(TaskGroup, TwoGroupsOnOnePoolDoNotInterfere)
{
    ThreadPool pool(2);
    TaskGroup a(pool);
    TaskGroup b(pool);
    std::atomic<int> ran_a{0}, ran_b{0};
    for (int i = 0; i < 16; ++i) {
        a.run([&ran_a] { ++ran_a; });
        b.run([&ran_b] { ++ran_b; });
    }
    a.wait();
    EXPECT_EQ(ran_a.load(), 16);
    b.wait();
    EXPECT_EQ(ran_b.load(), 16);
}

TEST(TaskGroup, WaitRethrowsFirstExceptionThenRecovers)
{
    ThreadPool pool(2);
    TaskGroup group(pool);
    group.run([] { throw std::runtime_error("shard failed"); });
    EXPECT_THROW(group.wait(), std::runtime_error);
    // The group stays usable for the next round.
    std::atomic<int> ran{0};
    group.run([&ran] { ++ran; });
    group.wait();
    EXPECT_EQ(ran.load(), 1);
}

// --- sweep determinism -------------------------------------------------------

/** Small but non-trivial grid: 2 organizations x 2 workloads x 2
 *  run lengths on a 4-core system. */
SweepSpec
smallGrid()
{
    SweepSpec spec;
    CmpConfig base = CmpConfig::paperConfig(CmpConfigKind::SharedL2, 4);
    base.privateCache = CacheConfig{64, 2};

    CmpConfig cuckoo = base;
    cuckoo.directory = cuckooSliceParams(4, 64);
    spec.config("Cuckoo 4x64", cuckoo);
    CmpConfig sparse = base;
    sparse.directory = sparseSliceParams(8, 32);
    spec.config("Sparse 8x32", sparse);

    for (const std::uint64_t seed : {7u, 21u}) {
        WorkloadParams wl;
        wl.name = "wl" + std::to_string(seed);
        wl.numCores = 4;
        wl.seed = seed;
        wl.codeBlocks = 128;
        wl.sharedBlocks = 512;
        wl.privateBlocksPerCore = 256;
        spec.workload(wl.name, wl);
    }

    for (const std::uint64_t accesses : {20000u, 40000u}) {
        ExperimentOptions opts;
        opts.warmupAccesses = accesses;
        opts.measureAccesses = accesses;
        opts.occupancySampleEvery = 1000;
        spec.options(std::to_string(accesses), opts);
    }
    return spec;
}

void
expectIdentical(const SweepRecord &a, const SweepRecord &b)
{
    EXPECT_EQ(a.configLabel, b.configLabel);
    EXPECT_EQ(a.workloadLabel, b.workloadLabel);
    EXPECT_EQ(a.optionsLabel, b.optionsLabel);
    // Bit-identical metrics: exact floating-point equality on purpose.
    EXPECT_EQ(a.result.avgInsertionAttempts,
              b.result.avgInsertionAttempts);
    EXPECT_EQ(a.result.forcedInvalidationRate,
              b.result.forcedInvalidationRate);
    EXPECT_EQ(a.result.avgOccupancy, b.result.avgOccupancy);
    EXPECT_EQ(a.result.directoryCapacity, b.result.directoryCapacity);
    EXPECT_EQ(a.result.directory.lookups, b.result.directory.lookups);
    EXPECT_EQ(a.result.directory.insertions,
              b.result.directory.insertions);
    EXPECT_EQ(a.result.directory.forcedEvictions,
              b.result.directory.forcedEvictions);
    EXPECT_EQ(a.result.system.cacheMisses, b.result.system.cacheMisses);
    EXPECT_EQ(a.result.system.sharingInvalidations,
              b.result.system.sharingInvalidations);
    for (std::size_t i = 1; i <= 32; ++i)
        EXPECT_EQ(a.result.attemptHistogram.at(i),
                  b.result.attemptHistogram.at(i))
            << "attempt bucket " << i;
}

TEST(SweepDeterminism, SerialAndEightJobsBitIdentical)
{
    const SweepSpec spec = smallGrid();
    const auto serial = SweepRunner(SweepOptions{1, ""}).run(spec);
    const auto parallel = SweepRunner(SweepOptions{8, ""}).run(spec);

    ASSERT_EQ(serial.size(), spec.cellCount());
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectIdentical(serial[i], parallel[i]);
    // The grid must actually have done directory work.
    std::uint64_t inserts = 0;
    for (const auto &rec : serial)
        inserts += rec.result.directory.insertions;
    EXPECT_GT(inserts, 0u);
}

TEST(SweepDeterminism, CellAndShardParallelismComposeBitIdentically)
{
    // Two-level parallelism: cells in flight (--jobs) x lanes inside
    // each cell (--shards). Both levels are determinism-preserving, so
    // the composed run must match the fully serial one.
    SweepSpec serial_spec = smallGrid();
    SweepSpec sharded_spec;
    for (const auto &point : serial_spec.configs())
        sharded_spec.config(point.label, point.config);
    for (const auto &point : serial_spec.workloads())
        sharded_spec.workload(point.label, point.workload);
    for (const auto &point : serial_spec.optionsAxis()) {
        ExperimentOptions opts = point.options;
        opts.shards = 2;
        sharded_spec.options(point.label, opts);
    }
    const auto serial = SweepRunner(SweepOptions{1, ""}).run(serial_spec);
    const auto sharded =
        SweepRunner(SweepOptions{2, ""}).run(sharded_spec);
    ASSERT_EQ(sharded.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectIdentical(serial[i], sharded[i]);
}

TEST(SweepRunMany, FlattensSpecsIntoOnePoolWithPerSpecResults)
{
    // Two distinct grids run as one flattened cell pool; each spec's
    // records must be exactly what run(spec) alone produces.
    SweepSpec first = smallGrid();
    SweepSpec second;
    CmpConfig cfg = CmpConfig::paperConfig(CmpConfigKind::SharedL2, 4);
    cfg.privateCache = CacheConfig{64, 2};
    cfg.directory = cuckooSliceParams(4, 32);
    second.config("Cuckoo 4x32", cfg);
    WorkloadParams wl;
    wl.name = "wl5";
    wl.numCores = 4;
    wl.seed = 5;
    wl.codeBlocks = 64;
    wl.sharedBlocks = 256;
    wl.privateBlocksPerCore = 128;
    second.workload(wl.name, wl);
    ExperimentOptions opts;
    opts.warmupAccesses = 10000;
    opts.measureAccesses = 10000;
    opts.occupancySampleEvery = 1000;
    second.options("10000", opts);

    const SweepRunner runner(SweepOptions{4, ""});
    const SweepSpec specs[] = {first, second};
    const auto grouped = runner.runMany(specs);
    ASSERT_EQ(grouped.size(), 2u);
    const auto alone_first = SweepRunner(SweepOptions{1, ""}).run(first);
    const auto alone_second =
        SweepRunner(SweepOptions{1, ""}).run(second);
    ASSERT_EQ(grouped[0].size(), alone_first.size());
    ASSERT_EQ(grouped[1].size(), alone_second.size());
    for (std::size_t i = 0; i < alone_first.size(); ++i)
        expectIdentical(grouped[0][i], alone_first[i]);
    for (std::size_t i = 0; i < alone_second.size(); ++i)
        expectIdentical(grouped[1][i], alone_second[i]);
}

TEST(SweepDeterminism, ConcurrentSameOrganizationMatchesSerial)
{
    // Two threads run the *same* organization name simultaneously; if
    // any state were shared behind the registry, hash families, or
    // workload samplers, results would diverge from the serial run.
    CmpConfig cfg = CmpConfig::paperConfig(CmpConfigKind::SharedL2, 4);
    cfg.privateCache = CacheConfig{64, 2};
    cfg.directory = cuckooSliceParams(4, 64);
    WorkloadParams wl;
    wl.numCores = 4;
    wl.seed = 99;
    wl.codeBlocks = 128;
    wl.sharedBlocks = 512;
    wl.privateBlocksPerCore = 256;
    ExperimentOptions opts;
    opts.warmupAccesses = 30000;
    opts.measureAccesses = 30000;

    const ExperimentResult baseline = runExperiment(cfg, wl, opts);
    ExperimentResult concurrent[2];
    {
        std::thread a(
            [&] { concurrent[0] = runExperiment(cfg, wl, opts); });
        std::thread b(
            [&] { concurrent[1] = runExperiment(cfg, wl, opts); });
        a.join();
        b.join();
    }
    for (const ExperimentResult &res : concurrent) {
        EXPECT_EQ(res.directory.lookups, baseline.directory.lookups);
        EXPECT_EQ(res.directory.insertions,
                  baseline.directory.insertions);
        EXPECT_EQ(res.directory.forcedEvictions,
                  baseline.directory.forcedEvictions);
        EXPECT_EQ(res.avgInsertionAttempts,
                  baseline.avgInsertionAttempts);
        EXPECT_EQ(res.avgOccupancy, baseline.avgOccupancy);
        EXPECT_EQ(res.system.cacheMisses, baseline.system.cacheMisses);
    }
}

// --- filter ------------------------------------------------------------------

TEST(SweepFilter, CommaSeparatedSubstringsMatchAny)
{
    SweepRunner runner(SweepOptions{1, "Cuckoo,wl21"});
    EXPECT_TRUE(runner.matchesFilter("Cuckoo 4x64/wl7/20000"));
    EXPECT_TRUE(runner.matchesFilter("Sparse 8x32/wl21/20000"));
    EXPECT_FALSE(runner.matchesFilter("Sparse 8x32/wl7/20000"));
    EXPECT_TRUE(SweepRunner(SweepOptions{1, ""})
                    .matchesFilter("anything at all"));
}

TEST(SweepFilter, RunOnlyExecutesMatchingCells)
{
    SweepSpec spec = smallGrid();
    const auto records =
        SweepRunner(SweepOptions{2, "Cuckoo"}).run(spec);
    ASSERT_EQ(records.size(), spec.cellCount() / 2);
    for (const auto &rec : records) {
        EXPECT_EQ(rec.configLabel, "Cuckoo 4x64");
        EXPECT_GT(rec.result.directory.lookups, 0u);
    }
}

// --- reporters ---------------------------------------------------------------

/** Capture Reporter output through a temporary FILE. */
std::string
emitted(ReportFormat format, const ReportTable &table)
{
    std::FILE *f = std::tmpfile();
    EXPECT_NE(f, nullptr);
    {
        Reporter reporter(format, f);
        reporter.table(table);
    }
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::string out(static_cast<std::size_t>(size), '\0');
    EXPECT_EQ(std::fread(out.data(), 1, out.size(), f), out.size());
    std::fclose(f);
    return out;
}

ReportTable
sampleTable()
{
    ReportTable table("sample", {"name", "value", "rate"});
    table.addRow(
        {cellText("alpha"), cellNum(1.25, "%.2f"), cellPct(0.5)});
    table.addRow({cellText("beta, quoted"), cellNum(2.0, "%.2f"),
                  cellMissing()});
    return table;
}

TEST(Reporter, CsvEmitsRawValuesAndQuotes)
{
    const std::string csv = emitted(ReportFormat::Csv, sampleTable());
    EXPECT_NE(csv.find("# sample\n"), std::string::npos);
    EXPECT_NE(csv.find("name,value,rate\n"), std::string::npos);
    EXPECT_NE(csv.find("alpha,1.25,0.5\n"), std::string::npos);
    EXPECT_NE(csv.find("\"beta, quoted\",2,-\n"), std::string::npos);
}

TEST(Reporter, JsonIsWellFormedArray)
{
    const std::string json = emitted(ReportFormat::Json, sampleTable());
    ASSERT_GE(json.size(), 3u);
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json[json.size() - 2], ']'); // trailing newline
    EXPECT_NE(json.find("\"title\": \"sample\""), std::string::npos);
    EXPECT_NE(json.find("[\"alpha\", 1.25, 0.5]"), std::string::npos);
    // An empty report is still valid JSON.
    std::FILE *f = std::tmpfile();
    ASSERT_NE(f, nullptr);
    { Reporter reporter(ReportFormat::Json, f); }
    std::fseek(f, 0, SEEK_SET);
    char buf[8] = {};
    EXPECT_GT(std::fread(buf, 1, sizeof buf, f), 0u);
    EXPECT_EQ(std::strncmp(buf, "[]", 2), 0);
    std::fclose(f);
}

TEST(Reporter, TableAlignsColumns)
{
    const std::string text = emitted(ReportFormat::Table, sampleTable());
    EXPECT_NE(text.find("=== sample ==="), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("50.000%"), std::string::npos);
}

// --- shared CLI --------------------------------------------------------------

TEST(HarnessCli, ParsesSharedFlagsAndIgnoresOthers)
{
    const char *argv[] = {"prog",          "positional",
                          "--jobs=5",      "--format=json",
                          "--filter=a,b",  "--scale=3",
                          "--warmup=1000", "--measure=2000",
                          "--ops=42"};
    const HarnessOptions opts = parseHarnessOptions(
        static_cast<int>(std::size(argv)), const_cast<char **>(argv));
    EXPECT_EQ(opts.jobs, 5u);
    EXPECT_EQ(opts.format, ReportFormat::Json);
    EXPECT_EQ(opts.filter, "a,b");
    EXPECT_EQ(opts.scale, 3u);
    EXPECT_EQ(opts.shards, 1u); // default: serial cells
    ExperimentOptions exp;
    exp = opts.applyOverrides(exp);
    EXPECT_EQ(exp.warmupAccesses, 1000u);
    EXPECT_EQ(exp.measureAccesses, 2000u);
    EXPECT_EQ(exp.shards, 1u);
}

TEST(HarnessCli, ShardsFlagFlowsIntoExperimentOptions)
{
    const char *argv[] = {"prog", "--jobs=1", "--shards=1"};
    const HarnessOptions opts = parseHarnessOptions(
        static_cast<int>(std::size(argv)), const_cast<char **>(argv));
    EXPECT_EQ(opts.shards, 1u);
    HarnessOptions two = opts;
    two.shards = 2; // as parsed on a machine with >= 2 spare threads
    EXPECT_EQ(two.applyOverrides(ExperimentOptions{}).shards, 2u);
}

TEST(ShardBudget, JobsTimesShardsNeverOversubscribes)
{
    // Plenty of hardware: the request is honoured.
    EXPECT_EQ(clampedShards(2, 4, 16), 4u);
    // Tight: 8 jobs on 16 threads leave room for 2 lanes per cell.
    EXPECT_EQ(clampedShards(8, 4, 16), 2u);
    // jobs=0 claims every hardware thread — no shard headroom.
    EXPECT_EQ(clampedShards(0, 8, 16), 1u);
    // Oversubscribed jobs alone: shards collapse to 1.
    EXPECT_EQ(clampedShards(32, 4, 16), 1u);
    // shards=0 asks for the full remaining budget.
    EXPECT_EQ(clampedShards(2, 0, 16), 8u);
    EXPECT_EQ(clampedShards(16, 0, 16), 1u);
    // Degenerate hardware report.
    EXPECT_EQ(clampedShards(1, 4, 0), 1u);
    EXPECT_EQ(clampedShards(1, 4, 1), 1u);
    // Never returns 0.
    EXPECT_EQ(clampedShards(1, 1, 16), 1u);
}

} // namespace
} // namespace cdir
