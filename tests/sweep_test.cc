/**
 * @file
 * Sweep-engine coverage:
 *
 *  - ThreadPool runs every submitted task and parallelFor propagates
 *    the first exception;
 *  - a grid run with --jobs 1 and --jobs 8 yields *bit-identical*
 *    ExperimentResult metrics in the same cell order (the determinism
 *    contract: every cell owns its CmpSystem and workload RNG);
 *  - two concurrent runExperiment calls on the same organization name
 *    match the serial baseline (no shared mutable state behind the
 *    registry or hash/Zipf machinery);
 *  - the comma-OR cell filter and the CSV/JSON reporters behave.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "common/thread_pool.hh"
#include "sim/sweep.hh"

namespace cdir {
namespace {

// --- thread pool -------------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> sum{0};
    for (int i = 1; i <= 100; ++i)
        pool.submit([&sum, i] { sum += i; });
    pool.wait();
    EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&ran] { ++ran; });
    }
    EXPECT_EQ(ran.load(), 50);
}

TEST(ParallelFor, CoversEveryIndexAtAnyWidth)
{
    for (unsigned jobs : {1u, 3u, 8u}) {
        std::vector<int> hits(257, 0);
        parallelFor(jobs, hits.size(),
                    [&](std::size_t i) { hits[i]++; });
        for (std::size_t i = 0; i < hits.size(); ++i)
            ASSERT_EQ(hits[i], 1) << "jobs " << jobs << " index " << i;
    }
}

TEST(ParallelFor, PropagatesFirstException)
{
    EXPECT_THROW(parallelFor(4, 64,
                             [](std::size_t i) {
                                 if (i == 13)
                                     throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
}

// --- sweep determinism -------------------------------------------------------

/** Small but non-trivial grid: 2 organizations x 2 workloads x 2
 *  run lengths on a 4-core system. */
SweepSpec
smallGrid()
{
    SweepSpec spec;
    CmpConfig base = CmpConfig::paperConfig(CmpConfigKind::SharedL2, 4);
    base.privateCache = CacheConfig{64, 2};

    CmpConfig cuckoo = base;
    cuckoo.directory = cuckooSliceParams(4, 64);
    spec.config("Cuckoo 4x64", cuckoo);
    CmpConfig sparse = base;
    sparse.directory = sparseSliceParams(8, 32);
    spec.config("Sparse 8x32", sparse);

    for (const std::uint64_t seed : {7u, 21u}) {
        WorkloadParams wl;
        wl.name = "wl" + std::to_string(seed);
        wl.numCores = 4;
        wl.seed = seed;
        wl.codeBlocks = 128;
        wl.sharedBlocks = 512;
        wl.privateBlocksPerCore = 256;
        spec.workload(wl.name, wl);
    }

    for (const std::uint64_t accesses : {20000u, 40000u}) {
        ExperimentOptions opts;
        opts.warmupAccesses = accesses;
        opts.measureAccesses = accesses;
        opts.occupancySampleEvery = 1000;
        spec.options(std::to_string(accesses), opts);
    }
    return spec;
}

void
expectIdentical(const SweepRecord &a, const SweepRecord &b)
{
    EXPECT_EQ(a.configLabel, b.configLabel);
    EXPECT_EQ(a.workloadLabel, b.workloadLabel);
    EXPECT_EQ(a.optionsLabel, b.optionsLabel);
    // Bit-identical metrics: exact floating-point equality on purpose.
    EXPECT_EQ(a.result.avgInsertionAttempts,
              b.result.avgInsertionAttempts);
    EXPECT_EQ(a.result.forcedInvalidationRate,
              b.result.forcedInvalidationRate);
    EXPECT_EQ(a.result.avgOccupancy, b.result.avgOccupancy);
    EXPECT_EQ(a.result.directoryCapacity, b.result.directoryCapacity);
    EXPECT_EQ(a.result.directory.lookups, b.result.directory.lookups);
    EXPECT_EQ(a.result.directory.insertions,
              b.result.directory.insertions);
    EXPECT_EQ(a.result.directory.forcedEvictions,
              b.result.directory.forcedEvictions);
    EXPECT_EQ(a.result.system.cacheMisses, b.result.system.cacheMisses);
    EXPECT_EQ(a.result.system.sharingInvalidations,
              b.result.system.sharingInvalidations);
    for (std::size_t i = 1; i <= 32; ++i)
        EXPECT_EQ(a.result.attemptHistogram.at(i),
                  b.result.attemptHistogram.at(i))
            << "attempt bucket " << i;
}

TEST(SweepDeterminism, SerialAndEightJobsBitIdentical)
{
    const SweepSpec spec = smallGrid();
    const auto serial = SweepRunner(SweepOptions{1, ""}).run(spec);
    const auto parallel = SweepRunner(SweepOptions{8, ""}).run(spec);

    ASSERT_EQ(serial.size(), spec.cellCount());
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectIdentical(serial[i], parallel[i]);
    // The grid must actually have done directory work.
    std::uint64_t inserts = 0;
    for (const auto &rec : serial)
        inserts += rec.result.directory.insertions;
    EXPECT_GT(inserts, 0u);
}

TEST(SweepDeterminism, ConcurrentSameOrganizationMatchesSerial)
{
    // Two threads run the *same* organization name simultaneously; if
    // any state were shared behind the registry, hash families, or
    // workload samplers, results would diverge from the serial run.
    CmpConfig cfg = CmpConfig::paperConfig(CmpConfigKind::SharedL2, 4);
    cfg.privateCache = CacheConfig{64, 2};
    cfg.directory = cuckooSliceParams(4, 64);
    WorkloadParams wl;
    wl.numCores = 4;
    wl.seed = 99;
    wl.codeBlocks = 128;
    wl.sharedBlocks = 512;
    wl.privateBlocksPerCore = 256;
    ExperimentOptions opts;
    opts.warmupAccesses = 30000;
    opts.measureAccesses = 30000;

    const ExperimentResult baseline = runExperiment(cfg, wl, opts);
    ExperimentResult concurrent[2];
    {
        std::thread a(
            [&] { concurrent[0] = runExperiment(cfg, wl, opts); });
        std::thread b(
            [&] { concurrent[1] = runExperiment(cfg, wl, opts); });
        a.join();
        b.join();
    }
    for (const ExperimentResult &res : concurrent) {
        EXPECT_EQ(res.directory.lookups, baseline.directory.lookups);
        EXPECT_EQ(res.directory.insertions,
                  baseline.directory.insertions);
        EXPECT_EQ(res.directory.forcedEvictions,
                  baseline.directory.forcedEvictions);
        EXPECT_EQ(res.avgInsertionAttempts,
                  baseline.avgInsertionAttempts);
        EXPECT_EQ(res.avgOccupancy, baseline.avgOccupancy);
        EXPECT_EQ(res.system.cacheMisses, baseline.system.cacheMisses);
    }
}

// --- filter ------------------------------------------------------------------

TEST(SweepFilter, CommaSeparatedSubstringsMatchAny)
{
    SweepRunner runner(SweepOptions{1, "Cuckoo,wl21"});
    EXPECT_TRUE(runner.matchesFilter("Cuckoo 4x64/wl7/20000"));
    EXPECT_TRUE(runner.matchesFilter("Sparse 8x32/wl21/20000"));
    EXPECT_FALSE(runner.matchesFilter("Sparse 8x32/wl7/20000"));
    EXPECT_TRUE(SweepRunner(SweepOptions{1, ""})
                    .matchesFilter("anything at all"));
}

TEST(SweepFilter, RunOnlyExecutesMatchingCells)
{
    SweepSpec spec = smallGrid();
    const auto records =
        SweepRunner(SweepOptions{2, "Cuckoo"}).run(spec);
    ASSERT_EQ(records.size(), spec.cellCount() / 2);
    for (const auto &rec : records) {
        EXPECT_EQ(rec.configLabel, "Cuckoo 4x64");
        EXPECT_GT(rec.result.directory.lookups, 0u);
    }
}

// --- reporters ---------------------------------------------------------------

/** Capture Reporter output through a temporary FILE. */
std::string
emitted(ReportFormat format, const ReportTable &table)
{
    std::FILE *f = std::tmpfile();
    EXPECT_NE(f, nullptr);
    {
        Reporter reporter(format, f);
        reporter.table(table);
    }
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::string out(static_cast<std::size_t>(size), '\0');
    EXPECT_EQ(std::fread(out.data(), 1, out.size(), f), out.size());
    std::fclose(f);
    return out;
}

ReportTable
sampleTable()
{
    ReportTable table("sample", {"name", "value", "rate"});
    table.addRow(
        {cellText("alpha"), cellNum(1.25, "%.2f"), cellPct(0.5)});
    table.addRow({cellText("beta, quoted"), cellNum(2.0, "%.2f"),
                  cellMissing()});
    return table;
}

TEST(Reporter, CsvEmitsRawValuesAndQuotes)
{
    const std::string csv = emitted(ReportFormat::Csv, sampleTable());
    EXPECT_NE(csv.find("# sample\n"), std::string::npos);
    EXPECT_NE(csv.find("name,value,rate\n"), std::string::npos);
    EXPECT_NE(csv.find("alpha,1.25,0.5\n"), std::string::npos);
    EXPECT_NE(csv.find("\"beta, quoted\",2,-\n"), std::string::npos);
}

TEST(Reporter, JsonIsWellFormedArray)
{
    const std::string json = emitted(ReportFormat::Json, sampleTable());
    ASSERT_GE(json.size(), 3u);
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json[json.size() - 2], ']'); // trailing newline
    EXPECT_NE(json.find("\"title\": \"sample\""), std::string::npos);
    EXPECT_NE(json.find("[\"alpha\", 1.25, 0.5]"), std::string::npos);
    // An empty report is still valid JSON.
    std::FILE *f = std::tmpfile();
    ASSERT_NE(f, nullptr);
    { Reporter reporter(ReportFormat::Json, f); }
    std::fseek(f, 0, SEEK_SET);
    char buf[8] = {};
    EXPECT_GT(std::fread(buf, 1, sizeof buf, f), 0u);
    EXPECT_EQ(std::strncmp(buf, "[]", 2), 0);
    std::fclose(f);
}

TEST(Reporter, TableAlignsColumns)
{
    const std::string text = emitted(ReportFormat::Table, sampleTable());
    EXPECT_NE(text.find("=== sample ==="), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("50.000%"), std::string::npos);
}

// --- shared CLI --------------------------------------------------------------

TEST(HarnessCli, ParsesSharedFlagsAndIgnoresOthers)
{
    const char *argv[] = {"prog",          "positional",
                          "--jobs=5",      "--format=json",
                          "--filter=a,b",  "--scale=3",
                          "--warmup=1000", "--measure=2000",
                          "--ops=42"};
    const HarnessOptions opts = parseHarnessOptions(
        static_cast<int>(std::size(argv)), const_cast<char **>(argv));
    EXPECT_EQ(opts.jobs, 5u);
    EXPECT_EQ(opts.format, ReportFormat::Json);
    EXPECT_EQ(opts.filter, "a,b");
    EXPECT_EQ(opts.scale, 3u);
    ExperimentOptions exp;
    exp = opts.applyOverrides(exp);
    EXPECT_EQ(exp.warmupAccesses, 1000u);
    EXPECT_EQ(exp.measureAccesses, 2000u);
}

} // namespace
} // namespace cdir
